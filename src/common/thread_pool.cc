#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

namespace cloudviews {

namespace {

// Per-queue cap; beyond roughly this many queued tasks per worker, Submit
// degrades to inline execution (backpressure without blocking).
constexpr size_t kMaxQueuedPerWorker = 1024;

// Identifies the pool (and worker slot) owning the current thread so nested
// Submit calls land on the caller's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

// Written once during static initialization (InstallTelemetryHooks), read
// unsynchronized on every Submit afterwards. Zero-initialized, so a binary
// without the obs objects sees all-null hooks.
ThreadPool::TelemetryHooks g_telemetry_hooks;

}  // namespace

void ThreadPool::InstallTelemetryHooks(const TelemetryHooks& hooks) {
  g_telemetry_hooks = hooks;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(2u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The store must happen under mu_: a worker that has just evaluated its
    // sleep predicate (false) but not yet gone to sleep would otherwise miss
    // both this flag and the notification below and block forever.
    MutexLock lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Run anything still queued so no TaskGroup is left waiting forever.
  std::function<void()> task;
  while (Steal(queues_.size(), &task)) task();
}

void ThreadPool::Submit(std::function<void()> task) {
  const TelemetryHooks& telemetry = g_telemetry_hooks;
  if (telemetry.on_submit != nullptr) telemetry.on_submit();
  if (telemetry.wait_timing_enabled != nullptr &&
      telemetry.wait_timing_enabled()) {
    // Queue-wait telemetry costs a wrapper allocation, so it is only
    // collected while tracing is on; the disabled path stays allocation-free.
    const uint64_t enqueued_us = telemetry.now_micros();
    task = [inner = std::move(task), enqueued_us, now = telemetry.now_micros,
            observe = telemetry.observe_wait_us] {
      observe(static_cast<double>(now() - enqueued_us));
      inner();
    };
  }
  if (stop_.load(std::memory_order_acquire)) {
    task();
    return;
  }
  size_t slot;
  if (tls_worker.pool == this) {
    slot = tls_worker.index;  // nested spawn: stay on the local deque
  } else {
    slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
           queues_.size();
  }
  WorkerQueue& q = *queues_[slot];
  bool enqueued = false;
  {
    MutexLock lock(q.mu);
    if (q.tasks.size() < kMaxQueuedPerWorker) {
      // Increment before the push, under the queue lock: a popper can only
      // see the task after the count reflects it, so the count never dips
      // below zero.
      pending_.fetch_add(1, std::memory_order_release);
      q.tasks.push_back(std::move(task));
      enqueued = true;
    }
  }
  if (!enqueued) {
    // Saturated: run inline. The caller makes progress either way.
    task();
    return;
  }
  // Empty critical section pairs with the sleeper's predicate check so the
  // notify cannot slip between its predicate evaluation and its wait.
  { MutexLock lock(mu_); }
  cv_.NotifyOne();
}

bool ThreadPool::PopLocal(size_t index, std::function<void()>* task) {
  WorkerQueue& q = *queues_[index];
  MutexLock lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.back());  // LIFO: most recently spawned first
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::Steal(size_t thief, std::function<void()>* task) {
  for (size_t i = 0; i < queues_.size(); ++i) {
    size_t victim = (thief + i) % queues_.size();
    WorkerQueue& q = *queues_[victim];
    MutexLock lock(q.mu);
    if (q.tasks.empty()) continue;
    *task = std::move(q.tasks.front());  // FIFO: steal the oldest work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::RunOne() {
  std::function<void()> task;
  bool found = false;
  if (tls_worker.pool == this) {
    found = PopLocal(tls_worker.index, &task);
  }
  if (!found) {
    // relaxed-ok: the ticket only spreads steal starting points; any stale
    // value is as good as any other.
    found = Steal(next_queue_.load(std::memory_order_relaxed) %
                      queues_.size(),
                  &task);
  }
  if (!found) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = {this, index};
  std::function<void()> task;
  while (true) {
    if (PopLocal(index, &task) || Steal(index + 1, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      task = nullptr;
      continue;
    }
    UniqueLock lock(mu_);
    cv_.Wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::DefaultDop() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  {
    MutexLock lock(mu_);
    pending_ += 1;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    Status status;
    try {
      status = fn();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("uncaught exception in task: ") +
                                e.what());
    } catch (...) {
      status = Status::Internal("uncaught non-standard exception in task");
    }
    Finish(status);
  });
}

void TaskGroup::Finish(const Status& status) {
  MutexLock lock(mu_);
  if (!status.ok() && status_.ok()) status_ = status;
  pending_ -= 1;
  if (pending_ == 0) cv_.NotifyAll();
}

Status TaskGroup::Wait() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (pending_ == 0) return status_;
    }
    // Help drain the pool instead of idling; fall back to a short timed
    // wait when there is nothing to run (our tasks are in flight elsewhere).
    if (!pool_->RunOne()) {
      UniqueLock lock(mu_);
      if (pending_ == 0) return status_;
      cv_.WaitFor(lock, std::chrono::milliseconds(1));
    }
  }
}

Status ParallelFor(ThreadPool* pool, int dop, size_t n, size_t grain,
                   const std::function<Status(size_t morsel, size_t begin,
                                              size_t end)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t morsels = (n + grain - 1) / grain;
  if (dop <= 1 || pool == nullptr || morsels == 1) {
    for (size_t m = 0; m < morsels; ++m) {
      CLOUDVIEWS_RETURN_NOT_OK(
          fn(m, m * grain, std::min(n, (m + 1) * grain)));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(morsels);
  TaskGroup group(pool);
  for (size_t m = 0; m < morsels; ++m) {
    group.Spawn([&, m]() -> Status {
      statuses[m] = fn(m, m * grain, std::min(n, (m + 1) * grain));
      return statuses[m];
    });
  }
  Status wait_status = group.Wait();
  // Deterministic error selection: the lowest-indexed failing morsel wins,
  // matching the row order a serial run would have failed in.
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return wait_status;
}

}  // namespace cloudviews
