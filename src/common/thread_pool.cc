#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cloudviews {

namespace {

// Per-queue cap; beyond roughly this many queued tasks per worker, Submit
// degrades to inline execution (backpressure without blocking).
constexpr size_t kMaxQueuedPerWorker = 1024;

// Identifies the pool (and worker slot) owning the current thread so nested
// Submit calls land on the caller's own deque.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(2u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Run anything still queued so no TaskGroup is left waiting forever.
  std::function<void()> task;
  while (Steal(queues_.size(), &task)) task();
}

void ThreadPool::Submit(std::function<void()> task) {
  static obs::Counter& submitted = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kThreadpoolTasks);
  submitted.Increment();
  if (obs::Tracer::Enabled()) {
    // Queue-wait telemetry costs a wrapper allocation, so it is only
    // collected while tracing is on; the disabled path stays allocation-free.
    static obs::Histogram& queue_wait =
        obs::MetricsRegistry::Global().histogram(
            obs::metric_names::kThreadpoolQueueWaitUs,
            obs::LatencyBucketsUs());
    const uint64_t enqueued_us = obs::Tracer::NowMicros();
    task = [inner = std::move(task), enqueued_us] {
      queue_wait.Observe(
          static_cast<double>(obs::Tracer::NowMicros() - enqueued_us));
      inner();
    };
  }
  if (stop_.load()) {
    task();
    return;
  }
  size_t slot;
  if (tls_worker.pool == this) {
    slot = tls_worker.index;  // nested spawn: stay on the local deque
  } else {
    slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
           queues_.size();
  }
  {
    std::unique_lock<std::mutex> lock(queues_[slot]->mu);
    if (queues_[slot]->tasks.size() >= kMaxQueuedPerWorker) {
      // Saturated: run inline. The caller makes progress either way.
      lock.unlock();
      task();
      return;
    }
    // Increment before the push, under the queue lock: a popper can only
    // see the task after the count reflects it, so the count never dips
    // below zero.
    pending_.fetch_add(1, std::memory_order_release);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  // Empty critical section pairs with the sleeper's predicate check so the
  // notify cannot slip between its predicate evaluation and its wait.
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_one();
}

bool ThreadPool::PopLocal(size_t index, std::function<void()>* task) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.back());  // LIFO: most recently spawned first
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::Steal(size_t thief, std::function<void()>* task) {
  for (size_t i = 0; i < queues_.size(); ++i) {
    size_t victim = (thief + i) % queues_.size();
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    *task = std::move(q.tasks.front());  // FIFO: steal the oldest work
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::RunOne() {
  std::function<void()> task;
  bool found = false;
  if (tls_worker.pool == this) {
    found = PopLocal(tls_worker.index, &task);
  }
  if (!found) found = Steal(next_queue_.load() % queues_.size(), &task);
  if (!found) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker = {this, index};
  std::function<void()> task;
  while (true) {
    if (PopLocal(index, &task) || Steal(index + 1, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::DefaultDop() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += 1;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    Status status;
    try {
      status = fn();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("uncaught exception in task: ") +
                                e.what());
    } catch (...) {
      status = Status::Internal("uncaught non-standard exception in task");
    }
    Finish(status);
  });
}

void TaskGroup::Finish(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok() && status_.ok()) status_ = status;
  pending_ -= 1;
  if (pending_ == 0) cv_.notify_all();
}

Status TaskGroup::Wait() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return status_;
    }
    // Help drain the pool instead of idling; fall back to a short timed
    // wait when there is nothing to run (our tasks are in flight elsewhere).
    if (!pool_->RunOne()) {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return status_;
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

Status ParallelFor(ThreadPool* pool, int dop, size_t n, size_t grain,
                   const std::function<Status(size_t morsel, size_t begin,
                                              size_t end)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t morsels = (n + grain - 1) / grain;
  if (dop <= 1 || pool == nullptr || morsels == 1) {
    for (size_t m = 0; m < morsels; ++m) {
      CLOUDVIEWS_RETURN_NOT_OK(
          fn(m, m * grain, std::min(n, (m + 1) * grain)));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(morsels);
  TaskGroup group(pool);
  for (size_t m = 0; m < morsels; ++m) {
    group.Spawn([&, m]() -> Status {
      statuses[m] = fn(m, m * grain, std::min(n, (m + 1) * grain));
      return statuses[m];
    });
  }
  Status wait_status = group.Wait();
  // Deterministic error selection: the lowest-indexed failing morsel wins,
  // matching the row order a serial run would have failed in.
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return wait_status;
}

}  // namespace cloudviews
