#ifndef CLOUDVIEWS_COMMON_MUTEX_H_
#define CLOUDVIEWS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace cloudviews {

class CondVar;
class UniqueLock;

// std::mutex wrapped as a Clang TSA capability. libstdc++'s std::mutex
// carries no capability attributes, so locks taken through it directly are
// invisible to -Wthread-safety; every mutex in src/ is a cloudviews::Mutex
// and every GUARDED_BY / REQUIRES names one of these.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

// RAII critical section (std::lock_guard shape).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII critical section a CondVar can wait on (std::unique_lock shape).
// Always holds the lock from construction to destruction from the
// analysis' point of view; the release/reacquire inside a wait is hidden
// behind CondVar on purpose.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// std::condition_variable over Mutex/UniqueLock. Wait members carry no
// acquire/release annotations: the capability is held across the wait from
// the caller's perspective, which is exactly how the analysis should treat
// the surrounding critical section. Predicates therefore run with the lock
// held — but TSA does not propagate lock sets into lambda bodies, so keep
// predicates to atomics (every wait site in src/ does; see DESIGN.md).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void Wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(UniqueLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(UniqueLock& lock,
               const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) {
    return cv_.wait_for(lock.lock_, timeout, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_MUTEX_H_
