#include "common/hash.h"

#include <cstring>

namespace cloudviews {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;

uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

Hasher& Hasher::Update(uint64_t value) {
  hi_ = Rotl(hi_ ^ (value * kPrime1), 31) * kPrime2;
  lo_ = Rotl(lo_ + (value ^ kPrime3), 27) * kPrime1 + kPrime2;
  length_ += 8;
  return *this;
}

Hasher& Hasher::Update(double value) {
  uint64_t bits = 0;
  // Canonicalize -0.0 to 0.0 so logically equal literals hash equally.
  double canonical = value == 0.0 ? 0.0 : value;
  std::memcpy(&bits, &canonical, sizeof(bits));
  return Update(bits);
}

Hasher& Hasher::Update(std::string_view bytes) {
  uint64_t word = 0;
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::memcpy(&word, bytes.data() + i, 8);
    Update(word);
  }
  if (i < bytes.size()) {
    word = 0;
    std::memcpy(&word, bytes.data() + i, bytes.size() - i);
    // Tag the tail with its length so "ab"+"c" != "a"+"bc".
    Update(word ^ (uint64_t{bytes.size() - i} << 56));
  }
  Update(uint64_t{bytes.size()});
  return *this;
}

Hash128 Hasher::Finish() const {
  Hash128 out;
  out.hi = Mix64(hi_ ^ (length_ * kPrime1));
  out.lo = Mix64(lo_ + (length_ ^ kPrime2) + out.hi);
  return out;
}

Hash128 HashString(std::string_view s) { return Hasher().Update(s).Finish(); }

bool Hash128::FromHex(std::string_view hex, Hash128* out) {
  if (hex.size() != 32 || out == nullptr) return false;
  uint64_t parts[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(p * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return false;
      }
      parts[p] = (parts[p] << 4) | digit;
    }
  }
  out->hi = parts[0];
  out->lo = parts[1];
  return true;
}

std::string Hash128::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t parts[2] = {hi, lo};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      out[p * 16 + i] = kDigits[(parts[p] >> (60 - 4 * i)) & 0xF];
    }
  }
  return out;
}

}  // namespace cloudviews
