#include "common/sim_clock.h"

#include <array>
#include <cstdio>

namespace cloudviews {

std::string SimClock::DayLabel(int day_index) {
  // 2020 is a leap year; the window of interest starts February 1, 2020.
  static constexpr std::array<int, 12> kDaysInMonth = {31, 29, 31, 30, 31, 30,
                                                       31, 31, 30, 31, 30, 31};
  int month = 1;  // 0-based: February
  int day = 1 + day_index;
  int year = 2020;
  while (day > kDaysInMonth[month]) {
    day -= kDaysInMonth[month];
    month += 1;
    if (month == 12) {
      month = 0;
      year += 1;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d/%d/%02d", month + 1, day, year % 100);
  return buf;
}

}  // namespace cloudviews
