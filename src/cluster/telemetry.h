#ifndef CLOUDVIEWS_CLUSTER_TELEMETRY_H_
#define CLOUDVIEWS_CLUSTER_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cloudviews {

// Per-job telemetry record emitted by the cluster simulator — one row of the
// production telemetry stream behind Figures 6 and 7.
struct JobTelemetry {
  int64_t job_id = 0;
  int day = 0;
  std::string virtual_cluster;
  int pipeline_id = -1;
  int template_id = -1;  // recurring-template identity (-1 = ad hoc)
  int runtime_version = 1;

  double latency_seconds = 0.0;          // critical-path execution time
  double queue_wait_seconds = 0.0;
  double processing_seconds = 0.0;       // sum over containers
  double bonus_processing_seconds = 0.0; // opportunistic-resource share
  int64_t containers = 0;
  double input_mb = 0.0;                 // base dataset MB read
  double data_read_mb = 0.0;             // total MB read incl. intermediates
  int queue_length_at_submit = 0;

  int views_built = 0;
  int views_matched = 0;
  bool failed = false;
  // Failure-model annotations (fault injection): node placements retried
  // before the job ran, and whether a straggler node stretched the tail.
  int node_retries = 0;
  bool straggler = false;
};

// One day's aggregate across all jobs.
struct DailyTelemetry {
  int day = 0;
  int64_t jobs = 0;
  double latency_seconds = 0.0;
  double processing_seconds = 0.0;
  double bonus_processing_seconds = 0.0;
  int64_t containers = 0;
  double input_mb = 0.0;
  double data_read_mb = 0.0;
  int64_t queue_length_sum = 0;
  int64_t views_built = 0;
  int64_t views_matched = 0;
  int64_t failures = 0;
  int64_t node_retries = 0;

  void Add(const JobTelemetry& job) {
    jobs += 1;
    latency_seconds += job.latency_seconds;
    processing_seconds += job.processing_seconds;
    bonus_processing_seconds += job.bonus_processing_seconds;
    containers += job.containers;
    input_mb += job.input_mb;
    data_read_mb += job.data_read_mb;
    queue_length_sum += job.queue_length_at_submit;
    views_built += job.views_built;
    views_matched += job.views_matched;
    if (job.failed) failures += 1;
    node_retries += job.node_retries;
  }
};

// Telemetry accumulator for one simulation arm (baseline or CloudViews).
class TelemetrySeries {
 public:
  void Record(const JobTelemetry& job) {
    by_day_[job.day].day = job.day;
    by_day_[job.day].Add(job);
    per_job_.push_back(job);
  }

  std::vector<DailyTelemetry> Days() const {
    std::vector<DailyTelemetry> out;
    out.reserve(by_day_.size());
    for (const auto& [day, d] : by_day_) out.push_back(d);
    return out;
  }

  const std::vector<JobTelemetry>& jobs() const { return per_job_; }

  DailyTelemetry Totals() const {
    DailyTelemetry total;
    for (const auto& [day, d] : by_day_) {
      total.jobs += d.jobs;
      total.latency_seconds += d.latency_seconds;
      total.processing_seconds += d.processing_seconds;
      total.bonus_processing_seconds += d.bonus_processing_seconds;
      total.containers += d.containers;
      total.input_mb += d.input_mb;
      total.data_read_mb += d.data_read_mb;
      total.queue_length_sum += d.queue_length_sum;
      total.views_built += d.views_built;
      total.views_matched += d.views_matched;
      total.failures += d.failures;
      total.node_retries += d.node_retries;
    }
    return total;
  }

 private:
  std::map<int, DailyTelemetry> by_day_;
  std::vector<JobTelemetry> per_job_;
};

// Percentage improvement of `with` over `base` (positive = improvement).
inline double ImprovementPercent(double base, double with_feature) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - with_feature) / base;
}

// Median of per-job latency improvements between paired runs (jobs matched
// by job id). Used for the paper's "median improvement of 15%" claim.
double MedianPerJobLatencyImprovement(const TelemetrySeries& baseline,
                                      const TelemetrySeries& with_feature);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CLUSTER_TELEMETRY_H_
