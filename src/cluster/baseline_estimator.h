#ifndef CLOUDVIEWS_CLUSTER_BASELINE_ESTIMATOR_H_
#define CLOUDVIEWS_CLUSTER_BASELINE_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cluster/telemetry.h"

namespace cloudviews {

// The paper's production measurement methodology (section 4, "Measuring
// impact"): re-running every job with CloudViews off is impossible in
// production, so "we took previous instances of the queries that qualified
// for CloudView optimization and collected four weeks' worth of
// observations before enabling CloudViews ... took the 75th percentile
// value of each of the performance metrics ... and compared them with each
// of the newer instances of that query once CloudViews was enabled."
//
// The estimator is keyed by the recurring job identity (template id in the
// simulator; recurring root signature in a real deployment).

struct BaselineMetrics {
  double latency_seconds = 0.0;
  double processing_seconds = 0.0;
  int64_t containers = 0;
  int64_t observations = 0;
};

class PercentileBaselineEstimator {
 public:
  // `percentile` in (0,1]; the paper uses 0.75. `window_days` bounds how
  // far back pre-enable observations count (paper: four weeks).
  explicit PercentileBaselineEstimator(double percentile = 0.75,
                                       int window_days = 28)
      : percentile_(percentile), window_days_(window_days) {}

  // Records a pre-enable observation of a recurring job.
  void RecordPreEnable(int64_t job_key, int day, const JobTelemetry& metrics);

  // The per-metric percentile baseline for the job, using observations from
  // the `window_days` before `as_of_day`. Nullopt if none recorded.
  std::optional<BaselineMetrics> Baseline(int64_t job_key, int as_of_day) const;

  // Estimated improvement (percent) of an enabled-period observation over
  // the baseline. Nullopt when no baseline exists.
  std::optional<double> EstimatedLatencyImprovement(
      int64_t job_key, int as_of_day, const JobTelemetry& observed) const;
  std::optional<double> EstimatedProcessingImprovement(
      int64_t job_key, int as_of_day, const JobTelemetry& observed) const;

  size_t num_jobs_tracked() const { return history_.size(); }

 private:
  struct Observation {
    int day = 0;
    double latency = 0.0;
    double processing = 0.0;
    int64_t containers = 0;
  };

  double Percentile(std::vector<double> values) const;

  double percentile_;
  int window_days_;
  std::map<int64_t, std::vector<Observation>> history_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CLUSTER_BASELINE_ESTIMATOR_H_
