#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>

#include "fault/fault.h"
#include "fault/fault_sites.h"
#include "obs/decision.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "plan/signature.h"

namespace cloudviews {

namespace {

// Operators that run as their own stage (behind an exchange) and therefore
// claim containers. Filters/projects/limits fuse into their producer stage.
bool ClaimsContainers(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kSpool:
    case LogicalOpKind::kUdo:
      return true;
    default:
      return false;
  }
}

}  // namespace

ClusterSimulator::ClusterSimulator(ReuseEngine* engine,
                                   ClusterSimOptions options)
    : engine_(engine), options_(options), random_(options.seed) {
  next_sample_time_ = options_.sample_interval_seconds;
  base_lookup_hits_ = obs::MetricsRegistry::Global()
                          .counter(obs::metric_names::kViewsLookupHit)
                          .Value();
  base_lookup_misses_ = obs::MetricsRegistry::Global()
                            .counter(obs::metric_names::kViewsLookupMiss)
                            .Value();
}

int ClusterSimulator::StageWidth(const LogicalOp& node) const {
  // Width is driven by the optimizer's ESTIMATE of the stage input size:
  // over-estimates instantiate more containers than the data needs. Nodes
  // whose statistics were fed back from materialized views estimate
  // accurately (stats_from_view), shrinking width.
  double input_rows = 0.0;
  if (node.children.empty()) {
    input_rows = node.estimated_rows;
  } else {
    for (const LogicalOpPtr& child : node.children) {
      input_rows += child->estimated_rows;
    }
  }
  int width = static_cast<int>(
      std::ceil(input_rows / std::max(1.0, options_.rows_per_partition)));
  return std::clamp(width, 1, options_.max_stage_width);
}

ClusterSimulator::NodeAnalysis ClusterSimulator::AnalyzeNode(
    const LogicalOp& node, const ExecutionStats& stats,
    StageAnalysis* out) const {
  double cpu = 0.0;
  auto it = stats.per_node.find(&node);
  if (it != stats.per_node.end()) cpu = it->second.cpu_cost;
  out->processing_seconds += cpu / options_.cpu_rate;

  double child_latency = 0.0;
  double fused_child_cost = 0.0;
  for (const LogicalOpPtr& child : node.children) {
    NodeAnalysis child_analysis = AnalyzeNode(*child, stats, out);
    child_latency = std::max(child_latency, child_analysis.latency);
    fused_child_cost += child_analysis.cost_here;
  }

  if (node.kind == LogicalOpKind::kSpool) {
    // The spool's extra write work runs in a separate parallel stage: it
    // costs processing time but stays off the job's critical path. The
    // pass-through consumer continues with the child's data immediately.
    int width = StageWidth(node);
    out->containers += width;
    out->max_width = std::max(out->max_width, width);
    return {child_latency, fused_child_cost};
  }

  if (ClaimsContainers(node.kind)) {
    int width = StageWidth(node);
    out->containers += width;
    out->max_width = std::max(out->max_width, width);
    double stage_cost = cpu + fused_child_cost;
    // Containers scale work down by width, degraded by the parallel
    // efficiency the executor measured on real hardware: a job that only
    // achieved 60% morsel efficiency locally won't magically scale
    // perfectly across containers either.
    double elapsed =
        stage_cost / (static_cast<double>(width) * options_.cpu_rate *
                      MeasuredEfficiency(stats)) +
        options_.container_startup_seconds * std::log2(width + 1.0);
    return {child_latency + elapsed, 0.0};
  }

  // Fused operator: its cost rides along until the next stage boundary.
  return {child_latency, cpu + fused_child_cost};
}

double ClusterSimulator::MeasuredEfficiency(
    const ExecutionStats& stats) const {
  if (!options_.use_measured_parallel_time) return 1.0;
  if (stats.dop <= 1 || stats.wall_seconds <= 0.0 ||
      stats.morsel_busy_seconds < options_.min_measured_busy_seconds) {
    return 1.0;
  }
  double efficiency = stats.morsel_busy_seconds /
                      (stats.wall_seconds * static_cast<double>(stats.dop));
  return std::clamp(efficiency, options_.min_parallel_efficiency, 1.0);
}

ClusterSimulator::StageAnalysis ClusterSimulator::AnalyzeStages(
    const LogicalOp& root, const ExecutionStats& stats) const {
  StageAnalysis out;
  NodeAnalysis root_analysis = AnalyzeNode(root, stats, &out);
  // Account any cost fused above the last boundary (e.g. final project) as a
  // single-container tail stage.
  out.latency_seconds =
      root_analysis.latency + root_analysis.cost_here / options_.cpu_rate;
  if (root_analysis.cost_here > 0 && !ClaimsContainers(root.kind)) {
    out.containers += 1;
    out.max_width = std::max(out.max_width, 1);
  }
  return out;
}

void ClusterSimulator::RecordJoins(const LogicalOp& node, int day,
                                   double start, double end) {
  if (node.kind == LogicalOpKind::kJoin) {
    SignatureComputer computer(
        engine_->options().optimizer.signature_options);
    JoinExecutionRecord record;
    record.signature = computer.Compute(node).strict;
    record.algorithm = node.join_algorithm;
    record.day = day;
    record.start = start;
    record.end = end;
    join_records_.push_back(record);
  }
  for (const LogicalOpPtr& child : node.children) {
    RecordJoins(*child, day, start, end);
  }
}

void ClusterSimulator::TakeSample(double sample_time) {
  obs::TimeSeriesCollector* ts = options_.timeseries;
  const ViewStore& store = engine_->view_store();
  ts->series("views.live").Add(sample_time,
                               static_cast<double>(store.NumLive()));
  ts->series("storage.used_bytes")
      .Add(sample_time, static_cast<double>(store.TotalBytes()));
  ts->series("storage.budget_bytes")
      .Add(sample_time,
           static_cast<double>(
               engine_->options().selection.storage_budget_bytes));
  ts->series("views.created")
      .Add(sample_time, static_cast<double>(store.total_views_created()));
  ts->series("views.reused")
      .Add(sample_time, static_cast<double>(store.total_views_reused()));
  ts->series("views.quarantined")
      .Add(sample_time, static_cast<double>(store.total_views_quarantined()));
  // Hit rate over this simulator's lifetime, from registry deltas (the
  // counters themselves are process-global).
  uint64_t hits = obs::MetricsRegistry::Global()
                      .counter(obs::metric_names::kViewsLookupHit)
                      .Value() -
                  base_lookup_hits_;
  uint64_t misses = obs::MetricsRegistry::Global()
                        .counter(obs::metric_names::kViewsLookupMiss)
                        .Value() -
                    base_lookup_misses_;
  double lookups = static_cast<double>(hits + misses);
  ts->series("reuse.hit_rate")
      .Add(sample_time,
           lookups > 0.0 ? static_cast<double>(hits) / lookups : 0.0);
  if (obs::ProvenanceLedger::Enabled()) {
    obs::LedgerTotals totals = engine_->provenance().Totals(sample_time);
    ts->series("savings.attributed").Add(sample_time,
                                         totals.attributed_savings);
    ts->series("savings.build_cost").Add(sample_time, totals.build_cost);
    ts->series("savings.storage_rent").Add(sample_time, totals.storage_rent);
    ts->series("savings.net").Add(sample_time, totals.net_savings);
  }
  if (obs::DecisionLedger::Enabled()) {
    // Hourly miss-attribution trajectory: how much estimated latency the
    // fleet has left on the table so far, and the hit/miss decision mix.
    obs::DecisionTotals totals = engine_->decisions().Totals();
    ts->series("decisions.events")
        .Add(sample_time, static_cast<double>(totals.events));
    ts->series("decisions.hits")
        .Add(sample_time, static_cast<double>(totals.hits));
    ts->series("decisions.misses")
        .Add(sample_time, static_cast<double>(totals.misses));
    ts->series("decisions.foregone_saving")
        .Add(sample_time, totals.foregone_saving);
    ts->series("decisions.realized_saving")
        .Add(sample_time, totals.realized_saving);
  }
}

void ClusterSimulator::SampleUpTo(double now) {
  if (options_.timeseries == nullptr ||
      options_.sample_interval_seconds <= 0.0) {
    return;
  }
  while (next_sample_time_ <= now) {
    TakeSample(next_sample_time_);
    next_sample_time_ += options_.sample_interval_seconds;
  }
}

Result<JobTelemetry> ClusterSimulator::SubmitJob(const GeneratedJob& job) {
  static obs::Counter& jobs_counter =
      obs::MetricsRegistry::Global().counter(obs::metric_names::kSimJobs);
  static obs::Histogram& wait_hist =
      obs::MetricsRegistry::Global().histogram(
          obs::metric_names::kSimQueueWaitSeconds,
          obs::WaitBucketsSeconds());
  jobs_counter.Increment();
  obs::Span span("job", "sim");
  span.Arg("job_id", static_cast<int64_t>(job.job_id));
  span.Arg("day", static_cast<int64_t>(job.day));

  clock_.AdvanceTo(job.submit_time);
  // Jobs arrive in nondecreasing submit-time order, so every sample interval
  // that elapsed before this submission can be flushed now.
  SampleUpTo(job.submit_time);

  // --- Queueing at the job service -----------------------------------------
  VcState& vc = vcs_[job.virtual_cluster];
  if (vc.running.empty()) {
    vc.running.assign(static_cast<size_t>(options_.vc_concurrent_jobs), 0.0);
  }
  // Queue length observed at submission: previously assigned jobs that have
  // not started yet.
  while (!vc.waiting.empty() && vc.waiting.front() <= job.submit_time) {
    vc.waiting.pop_front();
  }
  int queue_length = static_cast<int>(vc.waiting.size());

  auto earliest = std::min_element(vc.running.begin(), vc.running.end());
  double start_time = std::max(job.submit_time, *earliest);
  double queue_wait = start_time - job.submit_time;
  wait_hist.Observe(queue_wait);

  // --- Execute through the reuse engine ------------------------------------
  JobRequest request;
  request.job_id = job.job_id;
  request.virtual_cluster = job.virtual_cluster;
  request.plan = job.plan;
  request.submit_time = job.submit_time;
  request.day = job.day;
  request.cloudviews_enabled = job.cloudviews_enabled;
  request.queue_wait_seconds = queue_wait;

  JobTelemetry telemetry;
  telemetry.job_id = job.job_id;
  telemetry.day = job.day;
  telemetry.virtual_cluster = job.virtual_cluster;
  telemetry.pipeline_id = job.pipeline_id;
  telemetry.template_id = job.template_id;
  telemetry.queue_length_at_submit = queue_length;
  telemetry.queue_wait_seconds = queue_wait;

  // --- Node placement faults ------------------------------------------------
  double retry_delay = 0.0;
  Status placed = TryPlaceJob(job.job_id, &telemetry, &retry_delay);
  if (!placed.ok()) {
    *earliest = start_time;  // failed jobs release their slot immediately
    telemetry_.Record(telemetry);
    return placed;
  }

  auto exec = engine_->RunJob(request);
  if (!exec.ok()) {
    telemetry.failed = true;
    *earliest = start_time;  // failed jobs release their slot immediately
    telemetry_.Record(telemetry);
    return exec.status();
  }

  // --- Derive resource metrics ----------------------------------------------
  DeriveResourceTelemetry(*exec, retry_delay, &telemetry);

  // Occupy the slot until the job finishes.
  double finish = start_time + telemetry.latency_seconds;
  *earliest = finish;
  if (queue_wait > 0.0) vc.waiting.push_back(start_time);

  RecordJoins(*exec->executed_plan, job.day, start_time, finish);
  telemetry_.Record(telemetry);
  return telemetry;
}

Status ClusterSimulator::TryPlaceJob(int64_t job_id, JobTelemetry* telemetry,
                                     double* retry_delay) {
  for (int attempt = 0;; ++attempt) {
    Status placed = fault::Inject(fault::sites::kNodeFail);
    if (placed.ok()) return placed;
    if (attempt + 1 >= options_.max_node_retries) {
      telemetry->failed = true;
      obs::LogWarn("sim", "job_failed_node_retries_exhausted",
                   {{"job_id", job_id},
                    {"retries", telemetry->node_retries}});
      return placed;
    }
    telemetry->node_retries += 1;
    *retry_delay +=
        options_.node_retry_backoff_seconds * std::pow(2.0, attempt);
    static obs::Counter& retries = obs::MetricsRegistry::Global().counter(
        obs::metric_names::kFaultsRetries);
    retries.Increment();
  }
}

void ClusterSimulator::DeriveResourceTelemetry(const JobExecution& exec,
                                               double retry_delay,
                                               JobTelemetry* telemetry) {
  StageAnalysis stages = AnalyzeStages(*exec.executed_plan, exec.stats);

  telemetry->views_built = exec.views_built;
  telemetry->views_matched = exec.views_matched;
  telemetry->containers = stages.containers;
  telemetry->processing_seconds = stages.processing_seconds;
  telemetry->input_mb =
      static_cast<double>(exec.stats.input_bytes) / (1024.0 * 1024.0);
  telemetry->data_read_mb =
      static_cast<double>(exec.stats.total_bytes_read) / (1024.0 * 1024.0);

  // Opportunistic (bonus) allocation: stages wider than the VC's guaranteed
  // tokens borrow idle cluster capacity, with high variance.
  double latency =
      stages.latency_seconds + exec.compile_overhead_seconds + retry_delay;
  if (stages.max_width > options_.vc_guaranteed_tokens) {
    double overflow =
        static_cast<double>(stages.max_width - options_.vc_guaranteed_tokens) /
        static_cast<double>(stages.max_width);
    double availability =
        std::clamp(random_.Gaussian(options_.bonus_availability_mean,
                                    options_.bonus_availability_stddev),
                   0.0, 1.0);
    telemetry->bonus_processing_seconds =
        stages.processing_seconds * overflow * availability;
    // Unavailable bonus capacity stretches the critical path: this is the
    // runtime unpredictability the paper attributes to bonus reliance.
    latency *= 1.0 + overflow * (1.0 - availability);
  }
  // Straggler injection: one slow node holds the whole stage hostage, so the
  // critical path stretches by the slowdown factor. Results are unaffected
  // (the engine already ran); only the latency tail moves.
  if (!fault::Inject(fault::sites::kNodeStraggler).ok()) {
    latency *= options_.straggler_slowdown;
    telemetry->straggler = true;
  }
  telemetry->latency_seconds = latency;
}

Result<std::vector<JobTelemetry>> ClusterSimulator::SubmitSharedWindow(
    const std::vector<GeneratedJob>& batch) {
  static obs::Counter& jobs_counter =
      obs::MetricsRegistry::Global().counter(obs::metric_names::kSimJobs);
  static obs::Histogram& wait_hist =
      obs::MetricsRegistry::Global().histogram(
          obs::metric_names::kSimQueueWaitSeconds,
          obs::WaitBucketsSeconds());

  obs::Span span("window", "sim");
  span.Arg("jobs", static_cast<int64_t>(batch.size()));

  // --- Admission: queueing + node placement per job, in submit order -------
  struct Admitted {
    const GeneratedJob* job;
    JobTelemetry telemetry;
    double start_time = 0.0;
    double retry_delay = 0.0;
  };
  std::vector<Admitted> admitted;
  admitted.reserve(batch.size());
  std::vector<JobRequest> requests;
  requests.reserve(batch.size());
  std::vector<JobTelemetry> results;
  results.reserve(batch.size());

  for (const GeneratedJob& job : batch) {
    jobs_counter.Increment();
    clock_.AdvanceTo(job.submit_time);
    SampleUpTo(job.submit_time);

    VcState& vc = vcs_[job.virtual_cluster];
    if (vc.running.empty()) {
      vc.running.assign(static_cast<size_t>(options_.vc_concurrent_jobs),
                        0.0);
    }
    while (!vc.waiting.empty() && vc.waiting.front() <= job.submit_time) {
      vc.waiting.pop_front();
    }
    int queue_length = static_cast<int>(vc.waiting.size());
    auto earliest = std::min_element(vc.running.begin(), vc.running.end());
    double start_time = std::max(job.submit_time, *earliest);
    double queue_wait = start_time - job.submit_time;
    wait_hist.Observe(queue_wait);

    Admitted entry;
    entry.job = &job;
    entry.start_time = start_time;
    entry.telemetry.job_id = job.job_id;
    entry.telemetry.day = job.day;
    entry.telemetry.virtual_cluster = job.virtual_cluster;
    entry.telemetry.pipeline_id = job.pipeline_id;
    entry.telemetry.template_id = job.template_id;
    entry.telemetry.queue_length_at_submit = queue_length;
    entry.telemetry.queue_wait_seconds = queue_wait;

    // Same placement-fault model as SubmitJob; a job that exhausts its
    // retries drops out of the window (it never reaches the engine, so it
    // cannot be elected producer or subscribe to anything).
    if (!TryPlaceJob(job.job_id, &entry.telemetry, &entry.retry_delay)
             .ok()) {
      *earliest = start_time;
      telemetry_.Record(entry.telemetry);
      results.push_back(entry.telemetry);
      continue;
    }

    JobRequest request;
    request.job_id = job.job_id;
    request.virtual_cluster = job.virtual_cluster;
    request.plan = job.plan;
    request.submit_time = job.submit_time;
    request.day = job.day;
    request.cloudviews_enabled = job.cloudviews_enabled;
    request.queue_wait_seconds = queue_wait;
    requests.push_back(std::move(request));
    admitted.push_back(std::move(entry));
  }

  // --- Execute the window through the engine --------------------------------
  auto execs = engine_->RunSharedWindow(requests);
  if (!execs.ok()) {
    for (Admitted& entry : admitted) {
      entry.telemetry.failed = true;
      telemetry_.Record(entry.telemetry);
    }
    return execs.status();
  }

  // --- Per-job resource metrics, in admission order -------------------------
  for (size_t i = 0; i < admitted.size(); ++i) {
    Admitted& entry = admitted[i];
    const JobExecution& exec = (*execs)[i];
    DeriveResourceTelemetry(exec, entry.retry_delay, &entry.telemetry);

    double finish = entry.start_time + entry.telemetry.latency_seconds;
    VcState& vc = vcs_[entry.job->virtual_cluster];
    auto earliest = std::min_element(vc.running.begin(), vc.running.end());
    *earliest = std::max(*earliest, finish);
    if (entry.telemetry.queue_wait_seconds > 0.0) {
      vc.waiting.push_back(entry.start_time);
    }

    RecordJoins(*exec.executed_plan, entry.job->day, entry.start_time,
                finish);
    telemetry_.Record(entry.telemetry);
    results.push_back(entry.telemetry);
  }
  return results;
}

void ClusterSimulator::TrimJoinRecordsBefore(int day) {
  join_records_.erase(
      std::remove_if(join_records_.begin(), join_records_.end(),
                     [day](const JoinExecutionRecord& r) {
                       return r.day < day;
                     }),
      join_records_.end());
}

}  // namespace cloudviews
