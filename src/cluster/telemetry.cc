#include "cluster/telemetry.h"

#include <algorithm>
#include <unordered_map>

namespace cloudviews {

double MedianPerJobLatencyImprovement(const TelemetrySeries& baseline,
                                      const TelemetrySeries& with_feature) {
  std::unordered_map<int64_t, double> base_latency;
  for (const JobTelemetry& job : baseline.jobs()) {
    base_latency[job.job_id] = job.latency_seconds;
  }
  std::vector<double> improvements;
  for (const JobTelemetry& job : with_feature.jobs()) {
    auto it = base_latency.find(job.job_id);
    if (it == base_latency.end() || it->second <= 0.0) continue;
    improvements.push_back(ImprovementPercent(it->second,
                                              job.latency_seconds));
  }
  if (improvements.empty()) return 0.0;
  size_t mid = improvements.size() / 2;
  std::nth_element(improvements.begin(), improvements.begin() + mid,
                   improvements.end());
  return improvements[mid];
}

}  // namespace cloudviews
