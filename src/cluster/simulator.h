#ifndef CLOUDVIEWS_CLUSTER_SIMULATOR_H_
#define CLOUDVIEWS_CLUSTER_SIMULATOR_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "cluster/telemetry.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/reuse_engine.h"
#include "obs/timeseries.h"

namespace cloudviews {

// Resource model of a Cosmos-like cluster. Jobs execute as DAGs of stages;
// each stage is partitioned into containers sized by the optimizer's
// cardinality ESTIMATES (over-partitioning bias included), while the actual
// work done comes from OBSERVED execution statistics. This split is what
// lets computation reuse shrink container counts (section 3.5): view scans
// carry accurate observed statistics.
struct ClusterSimOptions {
  double cpu_rate = 250.0;             // cost units per container-second
  double rows_per_partition = 400.0;   // estimated rows one container handles
  int max_stage_width = 64;            // container cap per stage
  // Scheduling overhead per stage grows with its container count; wasteful
  // over-partitioning therefore also costs latency, not just containers.
  double container_startup_seconds = 1.0;
  // When a job carries measured morsel telemetry (ExecutionStats.dop > 1
  // with wall/busy times), divide each stage's work term by the parallel
  // efficiency the executor actually achieved instead of assuming perfect
  // width scaling. Jobs below min_measured_busy_seconds of busy time keep
  // efficiency 1.0 (tiny deterministic test jobs measure mostly noise).
  bool use_measured_parallel_time = true;
  double min_measured_busy_seconds = 0.005;
  double min_parallel_efficiency = 0.25;   // clamp pathological measurements
  // Failure model (exercised only when fault injection arms the
  // cluster.node.* sites): a placement that lands on a dead node is retried
  // on a fresh node with exponential backoff charged to job latency; a
  // straggler node stretches the critical path by the slowdown factor.
  int max_node_retries = 3;
  double node_retry_backoff_seconds = 5.0;
  double straggler_slowdown = 4.0;
  int vc_guaranteed_tokens = 12;       // guaranteed containers per VC
  int vc_concurrent_jobs = 2;          // job-service slots per VC
  double bonus_availability_mean = 0.6;    // mean spare-capacity fraction
  double bonus_availability_stddev = 0.25; // opportunistic variance
  uint64_t seed = 7;
  // Time-series telemetry sink (not owned, may be null). Every
  // sample_interval_seconds of simulated time the simulator snapshots
  // engine/ledger gauges (views live, storage vs budget, hit rate,
  // cumulative net savings) into the collector.
  obs::TimeSeriesCollector* timeseries = nullptr;
  double sample_interval_seconds = 3600.0;  // one simulated hour
};

// A job instance ready for submission (produced by the workload generator).
struct GeneratedJob {
  int64_t job_id = 0;
  std::string virtual_cluster;
  int template_id = -1;   // -1 = ad hoc
  int pipeline_id = -1;
  int day = 0;
  double submit_time = 0.0;
  LogicalOpPtr plan;
  bool cloudviews_enabled = true;
};

// Record of one executed join operator (feeds the Figure 9 analysis of
// concurrently executing joins).
struct JoinExecutionRecord {
  Hash128 signature;      // strict signature of the join subexpression
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
  int day = 0;
  double start = 0.0;
  double end = 0.0;
};

// Discrete-event-ish cluster simulator: submits jobs (in nondecreasing
// submit-time order) to a ReuseEngine, models per-VC queueing and container
// allocation, and emits per-job telemetry.
class ClusterSimulator {
 public:
  ClusterSimulator(ReuseEngine* engine, ClusterSimOptions options = {});

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  // Runs one job to completion. Jobs must be submitted in submit-time order.
  Result<JobTelemetry> SubmitJob(const GeneratedJob& job);

  // Runs a batch of overlapping jobs as one sharing window through
  // ReuseEngine::RunSharedWindow (common subexpressions execute once and
  // stream to every subscriber). Jobs must be in nondecreasing submit-time
  // order, both inside the batch and across calls. Returns one telemetry
  // row per job, placement failures included (flagged `failed`); a hard
  // engine failure fails the whole window. Per-job outputs are byte-
  // identical to serial SubmitJob calls; only resource telemetry reflects
  // the sharing.
  Result<std::vector<JobTelemetry>> SubmitSharedWindow(
      const std::vector<GeneratedJob>& batch);

  const TelemetrySeries& telemetry() const { return telemetry_; }
  TelemetrySeries& telemetry() { return telemetry_; }
  const std::vector<JoinExecutionRecord>& join_records() const {
    return join_records_;
  }
  const SimClock& clock() const { return clock_; }
  ReuseEngine* engine() { return engine_; }

  // Clears per-day join records older than `day` (bounds memory).
  void TrimJoinRecordsBefore(int day);

  // Emits one time-series sample per elapsed sample interval up to `now`
  // (no-op without a collector). SubmitJob calls this automatically; the
  // driver should call it once more at end-of-run so the final partial
  // interval is captured.
  void SampleUpTo(double now);

 private:
  struct StageAnalysis {
    double latency_seconds = 0.0;     // critical path
    double processing_seconds = 0.0;  // container-seconds
    int64_t containers = 0;
    int max_width = 0;
  };

  // Walks the executed plan, grouping operators into stages at exchange
  // boundaries and deriving latency / processing / container counts.
  StageAnalysis AnalyzeStages(const LogicalOp& root,
                              const ExecutionStats& stats) const;

  struct NodeAnalysis {
    double latency = 0.0;
    double cost_here = 0.0;  // cpu cost accumulated in the current stage
  };
  NodeAnalysis AnalyzeNode(const LogicalOp& node, const ExecutionStats& stats,
                           StageAnalysis* out) const;

  // Parallel efficiency measured by the executor: busy / (wall * dop),
  // clamped to [min_parallel_efficiency, 1]. 1.0 for serial runs, tiny
  // jobs, or when use_measured_parallel_time is off.
  double MeasuredEfficiency(const ExecutionStats& stats) const;

  int StageWidth(const LogicalOp& node) const;

  void RecordJoins(const LogicalOp& node, int day, double start,
                   double end);

  // Shared tail of SubmitJob/SubmitSharedWindow: derives container,
  // processing, and latency metrics from an executed job and writes them
  // into `telemetry` (including latency_seconds).
  void DeriveResourceTelemetry(const JobExecution& exec, double retry_delay,
                               JobTelemetry* telemetry);

  // Node-placement fault model shared by SubmitJob/SubmitSharedWindow.
  // Injected BEFORE the engine runs so a retried job executes (and ingests
  // into the workload repository) exactly once. Each retry models the job
  // manager rescheduling the lost containers on a fresh node, with
  // exponential backoff accumulated into `retry_delay` (charged to the
  // job's latency). Returns OK once placed; after max_node_retries the
  // last fault status is returned with telemetry->failed set.
  Status TryPlaceJob(int64_t job_id, JobTelemetry* telemetry,
                     double* retry_delay);

  // Per-VC job-service state: finish times of currently running jobs.
  struct VcState {
    std::vector<double> running;  // finish times
    std::deque<double> waiting;   // submit times of queued jobs (for stats)
  };

  // Takes one snapshot stamped `sample_time` into the collector.
  void TakeSample(double sample_time);

  ReuseEngine* engine_;
  ClusterSimOptions options_;
  SimClock clock_;
  Random random_;
  TelemetrySeries telemetry_;
  std::map<std::string, VcState> vcs_;
  std::vector<JoinExecutionRecord> join_records_;
  // Sampling state. Registry counters are process-global and shared across
  // arms/tests, so rates are computed from deltas against baselines captured
  // at construction — that keeps exported series deterministic for a given
  // workload regardless of what ran before in the process.
  double next_sample_time_ = 0.0;
  uint64_t base_lookup_hits_ = 0;
  uint64_t base_lookup_misses_ = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CLUSTER_SIMULATOR_H_
