#include "cluster/baseline_estimator.h"

#include <algorithm>
#include <cmath>

namespace cloudviews {

void PercentileBaselineEstimator::RecordPreEnable(int64_t job_key, int day,
                                                  const JobTelemetry& metrics) {
  Observation obs;
  obs.day = day;
  obs.latency = metrics.latency_seconds;
  obs.processing = metrics.processing_seconds;
  obs.containers = metrics.containers;
  history_[job_key].push_back(obs);
}

double PercentileBaselineEstimator::Percentile(
    std::vector<double> values) const {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = percentile_ * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - std::floor(rank);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::optional<BaselineMetrics> PercentileBaselineEstimator::Baseline(
    int64_t job_key, int as_of_day) const {
  auto it = history_.find(job_key);
  if (it == history_.end()) return std::nullopt;
  std::vector<double> latency;
  std::vector<double> processing;
  std::vector<double> containers;
  for (const Observation& obs : it->second) {
    if (obs.day >= as_of_day || obs.day < as_of_day - window_days_) continue;
    latency.push_back(obs.latency);
    processing.push_back(obs.processing);
    containers.push_back(static_cast<double>(obs.containers));
  }
  if (latency.empty()) return std::nullopt;
  BaselineMetrics out;
  out.latency_seconds = Percentile(latency);
  out.processing_seconds = Percentile(processing);
  out.containers = static_cast<int64_t>(Percentile(containers));
  out.observations = static_cast<int64_t>(latency.size());
  return out;
}

std::optional<double>
PercentileBaselineEstimator::EstimatedLatencyImprovement(
    int64_t job_key, int as_of_day, const JobTelemetry& observed) const {
  auto baseline = Baseline(job_key, as_of_day);
  if (!baseline.has_value() || baseline->latency_seconds <= 0.0) {
    return std::nullopt;
  }
  return ImprovementPercent(baseline->latency_seconds,
                            observed.latency_seconds);
}

std::optional<double>
PercentileBaselineEstimator::EstimatedProcessingImprovement(
    int64_t job_key, int as_of_day, const JobTelemetry& observed) const {
  auto baseline = Baseline(job_key, as_of_day);
  if (!baseline.has_value() || baseline->processing_seconds <= 0.0) {
    return std::nullopt;
  }
  return ImprovementPercent(baseline->processing_seconds,
                            observed.processing_seconds);
}

}  // namespace cloudviews
