#include "plan/signature.h"

namespace cloudviews {

namespace {

// Contributes the node-local parameters (not children) to `hasher`.
// `strict` selects strict vs recurring hashing of literals and GUIDs.
void HashNodeParams(const LogicalOp& node, bool strict, Hasher* hasher) {
  hasher->Update(static_cast<uint64_t>(node.kind) + 0x5EED);
  switch (node.kind) {
    case LogicalOpKind::kScan:
      hasher->Update(std::string_view(node.dataset_name));
      hasher->Update(uint64_t{node.scan_columns.size()});
      for (int col : node.scan_columns) {
        hasher->Update(static_cast<uint64_t>(col));
      }
      if (strict) {
        // The strict signature pins the exact input version: a bulk update
        // (or GDPR forget) rotates the GUID and changes every signature above.
        hasher->Update(std::string_view(node.dataset_guid));
      }
      break;
    case LogicalOpKind::kViewScan:
      hasher->Update(node.view_signature);
      break;
    case LogicalOpKind::kSharedScan:
      hasher->Update(node.view_signature);
      break;
    case LogicalOpKind::kFilter:
      node.predicate->HashInto(hasher, strict);
      break;
    case LogicalOpKind::kProject:
      hasher->Update(uint64_t{node.projections.size()});
      for (const ExprPtr& e : node.projections) {
        e->HashInto(hasher, strict);
      }
      break;
    case LogicalOpKind::kJoin:
      hasher->Update(static_cast<uint64_t>(node.join_kind));
      hasher->Update(uint64_t{node.equi_keys.size()});
      for (const auto& [l, r] : node.equi_keys) {
        hasher->Update(static_cast<uint64_t>(l));
        hasher->Update(static_cast<uint64_t>(r));
      }
      if (node.predicate != nullptr) {
        node.predicate->HashInto(hasher, strict);
      }
      break;
    case LogicalOpKind::kAggregate:
      hasher->Update(uint64_t{node.group_by.size()});
      for (const ExprPtr& e : node.group_by) e->HashInto(hasher, strict);
      hasher->Update(uint64_t{node.aggregates.size()});
      for (const AggregateSpec& agg : node.aggregates) {
        hasher->Update(static_cast<uint64_t>(agg.func));
        hasher->Update(agg.distinct);
        if (agg.arg != nullptr) agg.arg->HashInto(hasher, strict);
      }
      break;
    case LogicalOpKind::kSort:
      hasher->Update(uint64_t{node.sort_keys.size()});
      for (const SortKey& key : node.sort_keys) {
        key.expr->HashInto(hasher, strict);
        hasher->Update(key.ascending);
      }
      break;
    case LogicalOpKind::kLimit:
      if (strict) {
        hasher->Update(static_cast<uint64_t>(node.limit));
      }
      break;
    case LogicalOpKind::kUnionAll:
      break;
    case LogicalOpKind::kUdo:
      // UDO identity is its (versioned) name; the engine cannot inspect the
      // code, so two UDOs with the same registered name are assumed equal.
      hasher->Update(std::string_view(node.udo_name));
      hasher->Update(node.udo_deterministic);
      break;
    case LogicalOpKind::kSpool:
      break;
  }
}

}  // namespace

NodeSignature SignatureComputer::ComputeNode(
    const LogicalOp& node, std::vector<NodeSignature>* out) const {
  // Reuse-infrastructure operators are signature-TRANSPARENT: a spool's
  // signature is its child's, and a view scan's is the signature of the
  // subexpression it replaced. Ancestors therefore hash identically whether
  // or not reuse machinery sits below them, which is what lets a bigger
  // candidate materialize on top of a smaller reused view.
  if (node.kind == LogicalOpKind::kSpool) {
    NodeSignature inner = ComputeNode(*node.children[0], out);
    NodeSignature marker = inner;
    marker.node = &node;
    marker.eligible = false;
    marker.ineligible_reason = "reuse infrastructure operator";
    marker.subtree_size = 1;  // never a reuse unit of its own
    if (out != nullptr) out->push_back(marker);
    return inner;
  }
  if (node.kind == LogicalOpKind::kViewScan ||
      node.kind == LogicalOpKind::kSharedScan) {
    NodeSignature sig;
    sig.node = &node;
    sig.strict = node.view_signature;
    sig.recurring = node.view_recurring_signature;
    // The replaced subtree was eligible (it was materialized or shared);
    // stay transparent for ancestors but do not offer the scan itself for
    // reuse.
    sig.eligible = true;
    sig.subtree_size = 1;
    if (out != nullptr) {
      NodeSignature marker = sig;
      marker.eligible = false;
      marker.ineligible_reason = "reuse infrastructure operator";
      out->push_back(marker);
    }
    return sig;
  }

  NodeSignature sig;
  sig.node = &node;

  Hasher strict_hasher(options_.runtime_version);
  Hasher recurring_hasher(options_.runtime_version ^ 0xA5A5A5A5ULL);

  // Children first (post-order).
  for (const LogicalOpPtr& child : node.children) {
    NodeSignature child_sig = ComputeNode(*child, out);
    strict_hasher.Update(child_sig.strict);
    recurring_hasher.Update(child_sig.recurring);
    sig.subtree_size += child_sig.subtree_size;
    if (!child_sig.eligible) {
      sig.eligible = false;
      sig.ineligible_reason = child_sig.ineligible_reason;
    }
  }

  HashNodeParams(node, /*strict=*/true, &strict_hasher);
  HashNodeParams(node, /*strict=*/false, &recurring_hasher);
  sig.strict = strict_hasher.Finish();
  sig.recurring = recurring_hasher.Finish();

  // Eligibility guards (paper section 4, "Signature correctness").
  if (node.kind == LogicalOpKind::kUdo) {
    if (!node.udo_deterministic) {
      sig.eligible = false;
      sig.ineligible_reason =
          "non-deterministic UDO: " + node.udo_name;
    } else if (node.udo_dependency_depth >
               options_.max_udo_dependency_depth) {
      sig.eligible = false;
      sig.ineligible_reason =
          "UDO dependency chain too deep: " + node.udo_name + " (" +
          std::to_string(node.udo_dependency_depth) + " > " +
          std::to_string(options_.max_udo_dependency_depth) + ")";
    }
  }
  if (out != nullptr) out->push_back(sig);
  return sig;
}

std::vector<NodeSignature> SignatureComputer::ComputeAll(
    const LogicalOp& root) const {
  std::vector<NodeSignature> out;
  out.reserve(root.TreeSize());
  ComputeNode(root, &out);
  return out;
}

NodeSignature SignatureComputer::Compute(const LogicalOp& node) const {
  return ComputeNode(node, nullptr);
}

namespace {

void HashMatchClass(const LogicalOp& node, Hasher* hasher) {
  // Filters and spools are fully transparent: the containment checker
  // tolerates arbitrary conjunctive-filter divergence at any level, so the
  // class key must not see them at all.
  if (node.kind == LogicalOpKind::kSpool ||
      node.kind == LogicalOpKind::kFilter) {
    HashMatchClass(*node.children[0], hasher);
    return;
  }
  hasher->Update(static_cast<uint64_t>(node.kind) + 0xC1A5);
  switch (node.kind) {
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kProject:
      // Kind marker only: rollup / projection-subset pairs differ in
      // parameters yet must land in the same class. (Non-root divergence is
      // rejected by the checker, but over-grouping here only costs an extra
      // stage-1 comparison — never a missed match.)
      break;
    default:
      HashNodeParams(node, /*strict=*/true, hasher);
      break;
  }
  hasher->Update(uint64_t{node.children.size()});
  for (const LogicalOpPtr& child : node.children) {
    HashMatchClass(*child, hasher);
  }
}

}  // namespace

Hash128 SignatureComputer::ComputeMatchClass(const LogicalOp& node) const {
  Hasher hasher(options_.runtime_version ^ 0xC1A55C1A55ULL);
  HashMatchClass(node, &hasher);
  return hasher.Finish();
}

}  // namespace cloudviews
