#include "plan/builder.h"

#include <functional>
#include <optional>

#include "sql/parser.h"

namespace cloudviews {

namespace {

// Recognized aggregate function names.
std::optional<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "COUNT") return AggFunc::kCount;
  if (name == "SUM") return AggFunc::kSum;
  if (name == "AVG") return AggFunc::kAvg;
  if (name == "MIN") return AggFunc::kMin;
  if (name == "MAX") return AggFunc::kMax;
  return std::nullopt;
}

bool ContainsAggregate(const sql::AstExpr& ast) {
  if (ast.kind == sql::AstExprKind::kFunctionCall &&
      AggFuncFromName(ast.function_name).has_value()) {
    return true;
  }
  for (const auto& child : ast.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

const char* kScalarFunctions[] = {"UPPER", "LOWER", "ABS",
                                  "ROUND", "LENGTH", "SUBSTR"};

bool IsScalarFunction(const std::string& name) {
  for (const char* fn : kScalarFunctions) {
    if (name == fn) return true;
  }
  return false;
}

// Collects aggregate calls appearing in an AST expression (deduplicated by
// structural identity is handled later, at bind time).
void CollectAggCalls(const sql::AstExpr& ast,
                     std::vector<const sql::AstExpr*>* out) {
  if (ast.kind == sql::AstExprKind::kFunctionCall &&
      AggFuncFromName(ast.function_name).has_value()) {
    out->push_back(&ast);
    return;  // no nested aggregates
  }
  for (const auto& child : ast.children) CollectAggCalls(*child, out);
}

}  // namespace

Result<ExprPtr> PlanBuilder::BindingScope::ResolveColumn(
    const std::string& qualifier, const std::string& name) const {
  const RelationBinding* found_rel = nullptr;
  int found_index = -1;
  for (const RelationBinding& rel : relations) {
    if (!qualifier.empty() && rel.qualifier != qualifier) continue;
    std::optional<int> idx = rel.schema.FindColumn(name);
    if (idx.has_value()) {
      if (found_rel != nullptr) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found_rel = &rel;
      found_index = rel.column_offset + *idx;
    }
  }
  if (found_rel == nullptr) {
    return Status::NotFound(
        "unresolved column: " +
        (qualifier.empty() ? name : qualifier + "." + name));
  }
  return Expr::MakeColumn(found_index, name);
}

Schema PlanBuilder::BindingScope::CombinedSchema() const {
  Schema out;
  for (const RelationBinding& rel : relations) {
    for (const ColumnDef& col : rel.schema.columns()) {
      out.AddColumn(col.name, col.type);
    }
  }
  return out;
}

Result<LogicalOpPtr> PlanBuilder::BuildFromSql(const std::string& sql) const {
  auto stmt = sql::Parser::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return Build(**stmt);
}

Result<LogicalOpPtr> PlanBuilder::Build(const sql::SelectStatement& stmt) const {
  auto plan = BuildQueryBlock(stmt);
  if (!plan.ok()) return plan.status();
  LogicalOpPtr root = std::move(plan).value();

  // UNION ALL chain: schemas must have equal arity.
  if (stmt.union_all_next != nullptr) {
    std::vector<LogicalOpPtr> branches;
    branches.push_back(std::move(root));
    const sql::SelectStatement* next = stmt.union_all_next.get();
    while (next != nullptr) {
      auto branch = BuildQueryBlock(*next);
      if (!branch.ok()) return branch.status();
      if ((*branch)->output_schema.num_columns() !=
          branches[0]->output_schema.num_columns()) {
        return Status::InvalidArgument(
            "UNION ALL branches have mismatched arity");
      }
      branches.push_back(std::move(branch).value());
      next = next->union_all_next.get();
    }
    root = LogicalOp::UnionAll(std::move(branches));
  }
  return root;
}

Result<LogicalOpPtr> PlanBuilder::BindScan(const sql::TableRef& ref,
                                           BindingScope* scope) const {
  auto dataset = catalog_->Lookup(ref.table_name);
  if (!dataset.ok()) return dataset.status();
  RelationBinding binding;
  binding.qualifier = ref.alias.empty() ? ref.table_name : ref.alias;
  binding.schema = dataset->table->schema();
  binding.column_offset = 0;
  for (const RelationBinding& rel : scope->relations) {
    binding.column_offset += static_cast<int>(rel.schema.num_columns());
  }
  scope->relations.push_back(binding);
  return LogicalOp::Scan(ref.table_name, dataset->guid,
                         dataset->table->schema());
}

Result<ExprPtr> PlanBuilder::BindExpr(const sql::AstExpr& ast,
                                      const BindingScope& scope) const {
  using sql::AstExprKind;
  switch (ast.kind) {
    case AstExprKind::kLiteral:
      return Expr::MakeLiteral(ast.literal);
    case AstExprKind::kColumnRef:
      return scope.ResolveColumn(ast.table_qualifier, ast.column_name);
    case AstExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid in a select list");
    case AstExprKind::kUnary: {
      auto operand = BindExpr(*ast.children[0], scope);
      if (!operand.ok()) return operand.status();
      return Expr::MakeUnary(ast.unary_op, std::move(operand).value());
    }
    case AstExprKind::kBinary: {
      auto lhs = BindExpr(*ast.children[0], scope);
      if (!lhs.ok()) return lhs.status();
      auto rhs = BindExpr(*ast.children[1], scope);
      if (!rhs.ok()) return rhs.status();
      return Expr::MakeBinary(ast.binary_op, std::move(lhs).value(),
                              std::move(rhs).value());
    }
    case AstExprKind::kFunctionCall: {
      if (AggFuncFromName(ast.function_name).has_value()) {
        return Status::InvalidArgument(
            "aggregate " + ast.function_name +
            " not allowed here (only in SELECT or HAVING)");
      }
      if (!IsScalarFunction(ast.function_name)) {
        return Status::NotSupported("unknown function: " + ast.function_name);
      }
      std::vector<ExprPtr> args;
      for (const auto& child : ast.children) {
        auto arg = BindExpr(*child, scope);
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(arg).value());
      }
      return Expr::MakeCall(ast.function_name, std::move(args));
    }
    case AstExprKind::kBetween: {
      auto v = BindExpr(*ast.children[0], scope);
      if (!v.ok()) return v.status();
      auto lo = BindExpr(*ast.children[1], scope);
      if (!lo.ok()) return lo.status();
      auto hi = BindExpr(*ast.children[2], scope);
      if (!hi.ok()) return hi.status();
      return Expr::MakeBetween(std::move(v).value(), std::move(lo).value(),
                               std::move(hi).value(), ast.negated);
    }
    case AstExprKind::kInList: {
      std::vector<ExprPtr> children;
      for (const auto& child : ast.children) {
        auto bound = BindExpr(*child, scope);
        if (!bound.ok()) return bound.status();
        children.push_back(std::move(bound).value());
      }
      return Expr::MakeInList(std::move(children), ast.negated);
    }
    case AstExprKind::kIsNull: {
      auto operand = BindExpr(*ast.children[0], scope);
      if (!operand.ok()) return operand.status();
      return Expr::MakeIsNull(std::move(operand).value(), ast.negated);
    }
    case AstExprKind::kLike: {
      auto operand = BindExpr(*ast.children[0], scope);
      if (!operand.ok()) return operand.status();
      return Expr::MakeLike(std::move(operand).value(), ast.like_pattern,
                            ast.negated);
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

Result<LogicalOpPtr> PlanBuilder::BuildQueryBlock(
    const sql::SelectStatement& stmt) const {
  BindingScope scope;
  auto scan = BindScan(stmt.from, &scope);
  if (!scan.ok()) return scan.status();
  LogicalOpPtr plan = std::move(scan).value();

  for (const sql::JoinClause& join : stmt.joins) {
    auto right = BindScan(join.table, &scope);
    if (!right.ok()) return right.status();
    ExprPtr condition;
    if (join.condition != nullptr) {
      auto bound = BindExpr(*join.condition, scope);
      if (!bound.ok()) return bound.status();
      condition = std::move(bound).value();
    }
    plan = LogicalOp::Join(plan, std::move(right).value(), join.kind,
                           condition);
  }

  if (stmt.where != nullptr) {
    auto predicate = BindExpr(*stmt.where, scope);
    if (!predicate.ok()) return predicate.status();
    plan = LogicalOp::Filter(plan, std::move(predicate).value());
  }

  // Decide whether this block aggregates.
  bool has_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const sql::SelectItem& item : stmt.select_list) {
    if (item.expr->kind != sql::AstExprKind::kStar &&
        ContainsAggregate(*item.expr)) {
      has_agg = true;
    }
  }

  // Bind final projection list. With aggregation, select/having expressions
  // are rewritten over the aggregate's output schema.
  std::vector<ExprPtr> projections;
  std::vector<std::string> names;

  if (has_agg) {
    // Bind group-by keys over the pre-aggregate scope.
    std::vector<ExprPtr> keys;
    for (const auto& g : stmt.group_by) {
      auto key = BindExpr(*g, scope);
      if (!key.ok()) return key.status();
      keys.push_back(std::move(key).value());
    }

    // Collect aggregate calls from select list and HAVING.
    std::vector<const sql::AstExpr*> agg_calls;
    for (const sql::SelectItem& item : stmt.select_list) {
      if (item.expr->kind != sql::AstExprKind::kStar) {
        CollectAggCalls(*item.expr, &agg_calls);
      }
    }
    if (stmt.having != nullptr) CollectAggCalls(*stmt.having, &agg_calls);

    std::vector<AggregateSpec> specs;
    std::vector<ExprPtr> bound_agg_args;  // parallel to specs; for dedup
    auto bind_agg = [&](const sql::AstExpr& call) -> Result<int> {
      AggregateSpec spec;
      spec.func = *AggFuncFromName(call.function_name);
      spec.distinct = call.distinct;
      ExprPtr arg;
      if (call.children.empty() ||
          call.children[0]->kind == sql::AstExprKind::kStar) {
        if (spec.func == AggFunc::kCount) spec.func = AggFunc::kCountStar;
      } else {
        auto bound = BindExpr(*call.children[0], scope);
        if (!bound.ok()) return bound.status();
        arg = std::move(bound).value();
      }
      // Deduplicate identical aggregate expressions.
      for (size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].func == spec.func && specs[i].distinct == spec.distinct) {
          bool same_arg =
              (arg == nullptr && bound_agg_args[i] == nullptr) ||
              (arg != nullptr && bound_agg_args[i] != nullptr &&
               arg->Equals(*bound_agg_args[i]));
          if (same_arg) return static_cast<int>(i);
        }
      }
      spec.arg = arg;
      spec.output_name =
          std::string(AggFuncName(spec.func)) + "_" +
          std::to_string(specs.size());
      specs.push_back(spec);
      bound_agg_args.push_back(arg);
      return static_cast<int>(specs.size()) - 1;
    };

    // Pre-bind all aggregate calls (stable order of specs).
    for (const sql::AstExpr* call : agg_calls) {
      auto idx = bind_agg(*call);
      if (!idx.ok()) return idx.status();
    }

    LogicalOpPtr agg_op = LogicalOp::Aggregate(plan, keys, specs);

    // Rewrites an AST expression into an Expr over the aggregate output:
    // aggregate calls become columns [num_keys + spec_index]; other parts
    // must match a group-by key expression.
    size_t num_keys = keys.size();
    std::function<Result<ExprPtr>(const sql::AstExpr&)> rewrite =
        [&](const sql::AstExpr& ast) -> Result<ExprPtr> {
      if (ast.kind == sql::AstExprKind::kFunctionCall &&
          AggFuncFromName(ast.function_name).has_value()) {
        auto idx = bind_agg(ast);
        if (!idx.ok()) return idx.status();
        int col = static_cast<int>(num_keys) + *idx;
        return Expr::MakeColumn(
            col, agg_op->output_schema.column(static_cast<size_t>(col)).name);
      }
      // Try to match the whole expression against a group-by key.
      auto bound = BindExpr(ast, scope);
      if (bound.ok()) {
        for (size_t i = 0; i < keys.size(); ++i) {
          if (bound.value()->Equals(*keys[i])) {
            return Expr::MakeColumn(
                static_cast<int>(i),
                agg_op->output_schema.column(i).name);
          }
        }
      }
      // Otherwise recurse into children (e.g. SUM(x) / COUNT(x) + 1).
      switch (ast.kind) {
        case sql::AstExprKind::kUnary: {
          auto operand = rewrite(*ast.children[0]);
          if (!operand.ok()) return operand.status();
          return Expr::MakeUnary(ast.unary_op, std::move(operand).value());
        }
        case sql::AstExprKind::kBinary: {
          auto lhs = rewrite(*ast.children[0]);
          if (!lhs.ok()) return lhs.status();
          auto rhs = rewrite(*ast.children[1]);
          if (!rhs.ok()) return rhs.status();
          return Expr::MakeBinary(ast.binary_op, std::move(lhs).value(),
                                  std::move(rhs).value());
        }
        case sql::AstExprKind::kLiteral:
          return Expr::MakeLiteral(ast.literal);
        default:
          return Status::InvalidArgument(
              "expression references non-grouped column");
      }
    };

    if (stmt.having != nullptr) {
      auto having = rewrite(*stmt.having);
      if (!having.ok()) return having.status();
      agg_op = LogicalOp::Filter(agg_op, std::move(having).value());
    }

    for (const sql::SelectItem& item : stmt.select_list) {
      if (item.expr->kind == sql::AstExprKind::kStar) {
        return Status::InvalidArgument("SELECT * with aggregation");
      }
      auto expr = rewrite(*item.expr);
      if (!expr.ok()) return expr.status();
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == sql::AstExprKind::kColumnRef
                   ? item.expr->column_name
                   : "expr" + std::to_string(projections.size());
      }
      projections.push_back(std::move(expr).value());
      names.push_back(std::move(name));
    }
    plan = LogicalOp::Project(agg_op, projections, names);
  } else {
    // No aggregation: bind select list directly; expand '*'.
    Schema combined = scope.CombinedSchema();
    for (const sql::SelectItem& item : stmt.select_list) {
      if (item.expr->kind == sql::AstExprKind::kStar) {
        for (size_t i = 0; i < combined.num_columns(); ++i) {
          projections.push_back(
              Expr::MakeColumn(static_cast<int>(i), combined.column(i).name));
          names.push_back(combined.column(i).name);
        }
        continue;
      }
      auto expr = BindExpr(*item.expr, scope);
      if (!expr.ok()) return expr.status();
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == sql::AstExprKind::kColumnRef
                   ? item.expr->column_name
                   : "expr" + std::to_string(projections.size());
      }
      projections.push_back(std::move(expr).value());
      names.push_back(std::move(name));
    }
    plan = LogicalOp::Project(plan, projections, names);
  }

  if (stmt.distinct) {
    // DISTINCT = group by all output columns with no aggregates.
    std::vector<ExprPtr> keys;
    for (size_t i = 0; i < plan->output_schema.num_columns(); ++i) {
      keys.push_back(
          Expr::MakeColumn(static_cast<int>(i),
                           plan->output_schema.column(i).name));
    }
    plan = LogicalOp::Aggregate(plan, keys, {});
  }

  if (!stmt.order_by.empty()) {
    // ORDER BY binds against the projected output schema (aliases visible).
    BindingScope out_scope;
    RelationBinding out_rel;
    out_rel.schema = plan->output_schema;
    out_scope.relations.push_back(out_rel);
    std::vector<SortKey> sort_keys;
    for (const sql::OrderItem& item : stmt.order_by) {
      auto expr = BindExpr(*item.expr, out_scope);
      if (!expr.ok()) return expr.status();
      sort_keys.push_back({std::move(expr).value(), item.ascending});
    }
    plan = LogicalOp::Sort(plan, std::move(sort_keys));
  }

  if (stmt.limit >= 0) {
    plan = LogicalOp::Limit(plan, stmt.limit);
  }
  return plan;
}

}  // namespace cloudviews
