#ifndef CLOUDVIEWS_PLAN_LOGICAL_PLAN_H_
#define CLOUDVIEWS_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "plan/expr.h"
#include "storage/schema.h"

namespace cloudviews {

enum class LogicalOpKind {
  kScan,       // read a named (GUID-versioned) dataset
  kViewScan,   // read a previously materialized CloudView (optimizer-added)
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kUnionAll,
  kUdo,        // user-defined operator: opaque per-row transform
  kSpool,      // dual-consumer spool (optimizer-added for materialization)
  kSharedScan, // subscribe to an in-flight shared producer (sharing-added)
};

const char* LogicalOpKindName(LogicalOpKind kind);

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

struct AggregateSpec {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;  // null for COUNT(*)
  bool distinct = false;
  std::string output_name;
};

// Physical join implementation, chosen by the optimizer. Lives on the
// logical node because this engine (like SCOPE's memo output) hands a single
// annotated plan to the executor.
enum class JoinAlgorithm { kHash, kMerge, kLoop };

const char* JoinAlgorithmName(JoinAlgorithm algorithm);

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

// A node of the logical plan DAG. Nodes are built by the plan builder,
// rewritten by the optimizer, and interpreted by the executor. Fields are
// grouped by the operator kinds that use them.
class LogicalOp {
 public:
  LogicalOpKind kind = LogicalOpKind::kScan;
  std::vector<LogicalOpPtr> children;
  Schema output_schema;

  // kScan.
  std::string dataset_name;
  std::string dataset_guid;   // version at bind time; part of strict signature
  // Column pruning: when non-empty, the scan emits only these columns (by
  // ordinal in the dataset's schema) and output_schema matches. Part of the
  // signature — scans of different column subsets are different
  // subexpressions.
  std::vector<int> scan_columns;

  // kViewScan: signatures of the subexpression the view replaces. Carrying
  // both makes the view scan signature-transparent — operators above it hash
  // exactly as they did over the original subtree, so larger candidates can
  // still match or materialize on top of a reused view.
  // kSpool: view_signature is the strict signature being materialized.
  // kSharedScan: signatures of the shared subexpression being subscribed to
  // (same transparency contract as kViewScan).
  Hash128 view_signature;
  Hash128 view_recurring_signature;
  std::string view_path;

  // kSharedScan only: a spool-free clone of the subtree this subscription
  // replaced. NOT a child — it stays invisible to children-based traversals
  // (signatures, verification, costing) and is executed independently only
  // when the subscriber detaches (producer abort / batch-wait timeout).
  LogicalOpPtr shared_fallback_plan;

  // kFilter; also kJoin residual condition.
  ExprPtr predicate;

  // kProject. projections.size() == output_schema.num_columns().
  std::vector<ExprPtr> projections;

  // kJoin.
  sql::JoinKind join_kind = sql::JoinKind::kInner;
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
  // Equi-join key ordinals extracted from the condition (left-child ordinal,
  // right-child ordinal pairs). Empty => pure theta/cross join (loop only).
  std::vector<std::pair<int, int>> equi_keys;

  // kAggregate.
  std::vector<ExprPtr> group_by;
  std::vector<AggregateSpec> aggregates;

  // kSort.
  std::vector<SortKey> sort_keys;

  // kLimit.
  int64_t limit = -1;

  // kUdo. UDOs are opaque: the engine cannot see inside them, matching the
  // paper's discussion of signature correctness for user code.
  std::string udo_name;
  bool udo_deterministic = true;
  int udo_dependency_depth = 0;   // library dependency chain length
  double udo_cost_per_row = 1.0;  // relative CPU weight
  // Simulated behaviour of the opaque transform: keep a row with this
  // probability (selectivity) — deterministic pseudo-random on row hash.
  double udo_selectivity = 1.0;

  // Annotations filled by the optimizer.
  double estimated_rows = 0.0;
  double estimated_bytes = 0.0;
  bool stats_from_view = false;  // statistics were fed back from a view

  // --- Factory helpers -----------------------------------------------------
  static LogicalOpPtr Scan(std::string dataset_name, std::string guid,
                           Schema schema);
  static LogicalOpPtr ViewScan(Hash128 signature, std::string path,
                               Schema schema);
  static LogicalOpPtr Filter(LogicalOpPtr child, ExprPtr predicate);
  static LogicalOpPtr Project(LogicalOpPtr child, std::vector<ExprPtr> exprs,
                              std::vector<std::string> names);
  static LogicalOpPtr Join(LogicalOpPtr left, LogicalOpPtr right,
                           sql::JoinKind kind, ExprPtr condition);
  static LogicalOpPtr Aggregate(LogicalOpPtr child, std::vector<ExprPtr> keys,
                                std::vector<AggregateSpec> aggs);
  static LogicalOpPtr Sort(LogicalOpPtr child, std::vector<SortKey> keys);
  static LogicalOpPtr Limit(LogicalOpPtr child, int64_t n);
  static LogicalOpPtr UnionAll(std::vector<LogicalOpPtr> children);
  static LogicalOpPtr Udo(LogicalOpPtr child, std::string name,
                          bool deterministic, int dependency_depth,
                          double selectivity = 1.0, double cost_per_row = 1.0);
  static LogicalOpPtr Spool(LogicalOpPtr child);
  static LogicalOpPtr SharedScan(Hash128 signature, Hash128 recurring,
                                 Schema schema, LogicalOpPtr fallback);

  // Number of operators in the subtree rooted here.
  size_t TreeSize() const;

  // Collects base dataset names read by this subtree (sorted, deduplicated).
  std::vector<std::string> InputDatasets() const;

  // Deep structural copy (expressions are shared; they are immutable).
  LogicalOpPtr Clone() const;

  std::string ToString(int indent = 0) const;
};

// Extracts equi-join key pairs from `condition` given the left child's output
// arity. Returns residual predicate parts that are not simple equality
// conjuncts (nullptr when fully consumed).
struct JoinConditionParts {
  std::vector<std::pair<int, int>> equi_keys;
  ExprPtr residual;
};
JoinConditionParts SplitJoinCondition(const ExprPtr& condition,
                                      size_t left_arity);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_LOGICAL_PLAN_H_
