#include "plan/containment.h"

#include <algorithm>
#include <utility>

namespace cloudviews {

namespace {

// Spools are transparent to matching: they materialize their input without
// changing it, exactly like signature computation treats them.
const LogicalOp& Peel(const LogicalOp& op) {
  const LogicalOp* p = &op;
  while (p->kind == LogicalOpKind::kSpool) p = p->children[0].get();
  return *p;
}

bool AggSpecEquals(const AggregateSpec& a, const AggregateSpec& b) {
  if (a.func != b.func || a.distinct != b.distinct) return false;
  if ((a.arg == nullptr) != (b.arg == nullptr)) return false;
  return a.arg == nullptr || a.arg->Equals(*b.arg);
}

bool SameAggParams(const LogicalOp& a, const LogicalOp& b) {
  if (a.group_by.size() != b.group_by.size() ||
      a.aggregates.size() != b.aggregates.size()) {
    return false;
  }
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    if (!a.group_by[i]->Equals(*b.group_by[i])) return false;
  }
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    if (!AggSpecEquals(a.aggregates[i], b.aggregates[i])) return false;
  }
  return true;
}

bool SameProjections(const LogicalOp& a, const LogicalOp& b) {
  if (a.projections.size() != b.projections.size()) return false;
  for (size_t i = 0; i < a.projections.size(); ++i) {
    if (!a.projections[i]->Equals(*b.projections[i])) return false;
  }
  return true;
}

struct WalkContext {
  std::string reject;
};

bool Reject(WalkContext* ctx, std::string reason) {
  if (ctx->reject.empty()) ctx->reject = std::move(reason);
  return false;
}

// Remaps every conjunct through `mapping` (input ordinal -> output ordinal);
// false when a conjunct references an unmapped column.
bool RemapConjuncts(std::vector<ExprPtr>* conjuncts,
                    const std::vector<int>& mapping) {
  for (ExprPtr& c : *conjuncts) {
    ExprPtr remapped = c->RemapColumns(mapping);
    if (remapped == nullptr) return false;
    c = std::move(remapped);
  }
  return true;
}

void MergeRange(std::vector<ColumnRange>* ranges, ColumnRange range) {
  auto existing = std::find_if(
      ranges->begin(), ranges->end(),
      [&](const ColumnRange& r) { return r.column == range.column; });
  if (existing != ranges->end()) {
    existing->IntersectWith(range);
  } else {
    ranges->push_back(std::move(range));
  }
}

// The filter-coverage core: every view conjunct must be implied by the
// query-side conjuncts. Range conjuncts are checked by per-column interval
// containment against the query's merged ranges; opaque conjuncts need a
// structurally identical twin (f(x) AND f(x) is f(x), so existence
// suffices). Pointwise implication Q => V makes the residual exact:
// sigma_Q(sigma_V(rows)) == sigma_Q(rows).
bool CoveredBy(const std::vector<ExprPtr>& view_conjuncts,
               const std::vector<ExprPtr>& query_conjuncts, WalkContext* ctx) {
  std::vector<ColumnRange> query_ranges;
  for (const ExprPtr& c : query_conjuncts) {
    std::optional<ColumnRange> range = RangeFromConjunct(c);
    if (range.has_value()) MergeRange(&query_ranges, *range);
  }
  for (const ExprPtr& vc : view_conjuncts) {
    std::optional<ColumnRange> range = RangeFromConjunct(vc);
    if (range.has_value()) {
      auto query_range = std::find_if(
          query_ranges.begin(), query_ranges.end(),
          [&](const ColumnRange& r) { return r.column == range->column; });
      if (query_range == query_ranges.end()) {
        return Reject(ctx, "query does not constrain a view-filtered column");
      }
      if (!query_range->ContainedIn(*range)) {
        return Reject(ctx, "query range not contained in the view's range");
      }
      continue;
    }
    bool twin = std::any_of(
        query_conjuncts.begin(), query_conjuncts.end(),
        [&](const ExprPtr& qc) { return qc->Equals(*vc); });
    if (!twin) {
      return Reject(ctx,
                    "opaque view conjunct has no identical query conjunct");
    }
  }
  return true;
}

// Moves `conjuncts` into *residual, dropping any with a structurally
// identical view twin: every view row already satisfies every view
// conjunct, so the twin filters nothing and the residual stays exact —
// while becoming maximally remappable through root compensation (a twin on
// a non-grouped / non-projected column would otherwise poison the remap).
void AppendNonRedundant(std::vector<ExprPtr> conjuncts,
                        const std::vector<ExprPtr>& view_conjuncts,
                        std::vector<ExprPtr>* residual) {
  for (ExprPtr& c : conjuncts) {
    bool redundant = std::any_of(
        view_conjuncts.begin(), view_conjuncts.end(),
        [&](const ExprPtr& vc) { return vc->Equals(*c); });
    if (!redundant) residual->push_back(std::move(c));
  }
}

// Lockstep walk of the query subtree against the view definition. On
// success appends residual conjuncts to *residual; they reference the
// shared output ordinals of the current level (query and view schemas agree
// everywhere the walk accepts). Invariant on success:
//   sigma_{AND(residual)}(view-subtree output) == query-subtree output.
bool Walk(const LogicalOp& q_in, const LogicalOp& v_in,
          std::vector<ExprPtr>* residual, WalkContext* ctx) {
  const LogicalOp& q = Peel(q_in);
  const LogicalOp& v = Peel(v_in);
  const bool q_filter = q.kind == LogicalOpKind::kFilter;
  const bool v_filter = v.kind == LogicalOpKind::kFilter;
  if (q_filter || v_filter) {
    if (q_filter && v_filter) {
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (below.empty() && q.predicate->Equals(*v.predicate)) {
        return true;  // identical filters over identical inputs: no residual
      }
      std::vector<ExprPtr> query_side;
      SplitConjuncts(q.predicate, &query_side);
      for (ExprPtr& c : below) query_side.push_back(std::move(c));
      std::vector<ExprPtr> view_side;
      SplitConjuncts(v.predicate, &view_side);
      if (!CoveredBy(view_side, query_side, ctx)) return false;
      AppendNonRedundant(std::move(query_side), view_side, residual);
      return true;
    }
    if (q_filter) {
      // The view kept everything here; the query's filter becomes residual.
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], v, &below, ctx)) return false;
      SplitConjuncts(q.predicate, residual);
      for (ExprPtr& c : below) residual->push_back(std::move(c));
      return true;
    }
    // View-only filter: the view dropped rows here, which is only safe when
    // the residual accumulated below already excludes them.
    std::vector<ExprPtr> below;
    if (!Walk(q, *v.children[0], &below, ctx)) return false;
    if (below.empty()) {
      return Reject(ctx, "view filters rows the query keeps");
    }
    if (!CoveredBy({}, below, ctx)) return false;  // never fails; keeps shape
    std::vector<ExprPtr> view_side;
    SplitConjuncts(v.predicate, &view_side);
    if (!CoveredBy(view_side, below, ctx)) return false;
    AppendNonRedundant(std::move(below), view_side, residual);
    return true;
  }

  if (q.kind != v.kind) {
    return Reject(ctx, std::string("operator kind mismatch: ") +
                           LogicalOpKindName(q.kind) + " vs " +
                           LogicalOpKindName(v.kind));
  }
  switch (q.kind) {
    case LogicalOpKind::kScan:
      if (q.dataset_name != v.dataset_name ||
          q.dataset_guid != v.dataset_guid ||
          q.scan_columns != v.scan_columns) {
        return Reject(ctx, "scans read different datasets/versions/columns");
      }
      return true;
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
      if (q.view_signature != v.view_signature) {
        return Reject(ctx, "view scans reference different views");
      }
      return true;
    case LogicalOpKind::kJoin: {
      if (q.join_kind != v.join_kind || q.equi_keys != v.equi_keys) {
        return Reject(ctx, "join kind or equi-keys differ");
      }
      if ((q.predicate == nullptr) != (v.predicate == nullptr) ||
          (q.predicate != nullptr && !q.predicate->Equals(*v.predicate))) {
        return Reject(ctx, "join residual conditions differ");
      }
      const size_t left_arity = v.children[0]->output_schema.num_columns();
      if (q.children[0]->output_schema.num_columns() != left_arity) {
        return Reject(ctx, "join input arity mismatch");
      }
      std::vector<ExprPtr> left_res;
      std::vector<ExprPtr> right_res;
      if (!Walk(*q.children[0], *v.children[0], &left_res, ctx)) return false;
      if (!Walk(*q.children[1], *v.children[1], &right_res, ctx)) return false;
      // Inner joins preserve both sides' column values, so residuals bubble
      // up with the right side shifted past the left arity. A LEFT join
      // null-extends the right side: only left residuals survive (filtering
      // left rows before or after the join selects the same output rows).
      if (q.join_kind == sql::JoinKind::kLeft && !right_res.empty()) {
        return Reject(ctx, "outer join null-extends a filtered input");
      }
      for (ExprPtr& c : left_res) residual->push_back(std::move(c));
      if (!right_res.empty()) {
        const size_t right_arity =
            v.children[1]->output_schema.num_columns();
        std::vector<int> shift(right_arity);
        for (size_t i = 0; i < right_arity; ++i) {
          shift[i] = static_cast<int>(left_arity + i);
        }
        if (!RemapConjuncts(&right_res, shift)) {
          return Reject(ctx, "join residual references an unknown column");
        }
        for (ExprPtr& c : right_res) residual->push_back(std::move(c));
      }
      return true;
    }
    case LogicalOpKind::kProject: {
      if (!SameProjections(q, v)) {
        return Reject(ctx, "projection lists differ below the root");
      }
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (below.empty()) return true;
      // The residual references input ordinals; it survives only through
      // pure column projections (first occurrence wins on duplicates).
      std::vector<int> mapping(v.children[0]->output_schema.num_columns(),
                               -1);
      for (size_t j = 0; j < v.projections.size(); ++j) {
        const ExprPtr& p = v.projections[j];
        if (p->kind == ExprKind::kColumn && p->column_index >= 0 &&
            static_cast<size_t>(p->column_index) < mapping.size() &&
            mapping[static_cast<size_t>(p->column_index)] < 0) {
          mapping[static_cast<size_t>(p->column_index)] =
              static_cast<int>(j);
        }
      }
      if (!RemapConjuncts(&below, mapping)) {
        return Reject(ctx, "residual references a column the projection "
                           "dropped");
      }
      for (ExprPtr& c : below) residual->push_back(std::move(c));
      return true;
    }
    case LogicalOpKind::kAggregate: {
      if (!SameAggParams(q, v)) {
        return Reject(ctx, "aggregation parameters differ below the root");
      }
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (below.empty()) return true;
      // A filter commutes with grouping only when it references group keys:
      // it then drops whole groups on either side of the aggregation.
      std::vector<int> mapping(v.children[0]->output_schema.num_columns(),
                               -1);
      for (size_t j = 0; j < v.group_by.size(); ++j) {
        const ExprPtr& g = v.group_by[j];
        if (g->kind == ExprKind::kColumn && g->column_index >= 0 &&
            static_cast<size_t>(g->column_index) < mapping.size() &&
            mapping[static_cast<size_t>(g->column_index)] < 0) {
          mapping[static_cast<size_t>(g->column_index)] =
              static_cast<int>(j);
        }
      }
      if (!RemapConjuncts(&below, mapping)) {
        return Reject(ctx, "residual references a non-grouped column");
      }
      for (ExprPtr& c : below) residual->push_back(std::move(c));
      return true;
    }
    case LogicalOpKind::kSort: {
      if (q.sort_keys.size() != v.sort_keys.size()) {
        return Reject(ctx, "sort keys differ");
      }
      for (size_t i = 0; i < q.sort_keys.size(); ++i) {
        if (q.sort_keys[i].ascending != v.sort_keys[i].ascending ||
            !q.sort_keys[i].expr->Equals(*v.sort_keys[i].expr)) {
          return Reject(ctx, "sort keys differ");
        }
      }
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (!below.empty()) {
        // Filtering after the sort can reorder ties relative to sorting the
        // filtered input; byte identity is the contract, so decline.
        return Reject(ctx, "sort above a residual filter");
      }
      return true;
    }
    case LogicalOpKind::kLimit: {
      if (q.limit != v.limit) return Reject(ctx, "limits differ");
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (!below.empty()) {
        return Reject(ctx, "limit above a residual filter");
      }
      return true;
    }
    case LogicalOpKind::kUdo: {
      if (q.udo_name != v.udo_name ||
          q.udo_deterministic != v.udo_deterministic ||
          q.udo_dependency_depth != v.udo_dependency_depth ||
          q.udo_selectivity != v.udo_selectivity ||
          q.udo_cost_per_row != v.udo_cost_per_row) {
        return Reject(ctx, "UDO parameters differ");
      }
      std::vector<ExprPtr> below;
      if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
      if (!below.empty()) {
        // The engine cannot see inside user code; no filter commutes with it.
        return Reject(ctx, "UDO above a residual filter");
      }
      return true;
    }
    case LogicalOpKind::kUnionAll: {
      if (q.children.size() != v.children.size()) {
        return Reject(ctx, "union branch counts differ");
      }
      for (size_t i = 0; i < q.children.size(); ++i) {
        std::vector<ExprPtr> below;
        if (!Walk(*q.children[i], *v.children[i], &below, ctx)) return false;
        if (!below.empty()) {
          return Reject(ctx, "union branch above a residual filter");
        }
      }
      return true;
    }
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kSpool:
      break;  // handled above / peeled
  }
  return Reject(ctx, "unsupported operator");
}

// Root rollup: the query groups by a subset of the view's group keys; the
// view's per-fine-group partials re-aggregate to the query's coarser
// groups. Sound derivations: COUNT/COUNT(*) -> SUM over the stored count,
// SUM -> SUM, MIN -> MIN, MAX -> MAX. AVG and DISTINCT do not decompose.
bool RollupRoot(const LogicalOp& q, const LogicalOp& v,
                SubsumptionResult* out, WalkContext* ctx) {
  if (q.group_by.empty()) {
    // Global re-aggregation over an empty (fully filtered) view yields no
    // input groups, but a global aggregate must still emit its one row with
    // COUNT 0 — not derivable, so decline the whole class.
    return Reject(ctx, "global rollup is not derivable");
  }
  std::vector<ExprPtr> below;
  if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
  const size_t num_view_groups = v.group_by.size();
  if (!below.empty()) {
    std::vector<int> mapping(v.children[0]->output_schema.num_columns(), -1);
    for (size_t j = 0; j < num_view_groups; ++j) {
      const ExprPtr& g = v.group_by[j];
      if (g->kind == ExprKind::kColumn && g->column_index >= 0 &&
          static_cast<size_t>(g->column_index) < mapping.size() &&
          mapping[static_cast<size_t>(g->column_index)] < 0) {
        mapping[static_cast<size_t>(g->column_index)] = static_cast<int>(j);
      }
    }
    if (!RemapConjuncts(&below, mapping)) {
      return Reject(ctx, "residual references a non-grouped column");
    }
  }
  out->reaggregate_group_by.reserve(q.group_by.size());
  for (size_t i = 0; i < q.group_by.size(); ++i) {
    int match = -1;
    for (size_t j = 0; j < num_view_groups; ++j) {
      if (q.group_by[i]->Equals(*v.group_by[j])) {
        match = static_cast<int>(j);
        break;
      }
    }
    if (match < 0) {
      return Reject(ctx, "query grouping is finer than the view's");
    }
    out->reaggregate_group_by.push_back(
        Expr::MakeColumn(match, q.output_schema.column(i).name));
  }
  for (const AggregateSpec& spec : q.aggregates) {
    if (spec.distinct) {
      return Reject(ctx, "DISTINCT aggregates do not roll up");
    }
    AggFunc want = AggFunc::kCountStar;
    AggFunc derived_func = AggFunc::kSum;
    switch (spec.func) {
      case AggFunc::kCountStar:
        want = AggFunc::kCountStar;
        derived_func = AggFunc::kSum;
        break;
      case AggFunc::kCount:
        want = AggFunc::kCount;
        derived_func = AggFunc::kSum;
        break;
      case AggFunc::kSum:
        want = AggFunc::kSum;
        derived_func = AggFunc::kSum;
        break;
      case AggFunc::kMin:
        want = AggFunc::kMin;
        derived_func = AggFunc::kMin;
        break;
      case AggFunc::kMax:
        want = AggFunc::kMax;
        derived_func = AggFunc::kMax;
        break;
      case AggFunc::kAvg:
        return Reject(ctx, "AVG does not roll up");
    }
    int match = -1;
    for (size_t j = 0; j < v.aggregates.size(); ++j) {
      const AggregateSpec& vs = v.aggregates[j];
      if (vs.distinct || vs.func != want) continue;
      if ((vs.arg == nullptr) != (spec.arg == nullptr)) continue;
      if (vs.arg != nullptr && !vs.arg->Equals(*spec.arg)) continue;
      match = static_cast<int>(j);
      break;
    }
    if (match < 0) {
      return Reject(ctx, "view lacks the aggregate needed for rollup");
    }
    const size_t view_ordinal = num_view_groups + static_cast<size_t>(match);
    AggregateSpec derived;
    derived.func = derived_func;
    derived.arg = Expr::MakeColumn(
        static_cast<int>(view_ordinal),
        v.output_schema.column(view_ordinal).name);
    derived.output_name = spec.output_name;
    out->reaggregate_aggs.push_back(std::move(derived));
  }
  out->needs_reaggregate = true;
  out->residual = std::move(below);
  return true;
}

// Root projection subset: the view projects a superset of what the query
// needs (pure column refs only — the view must not have computed away the
// inputs), so the query's projections re-express over the view's output.
bool ProjectRoot(const LogicalOp& q, const LogicalOp& v,
                 SubsumptionResult* out, WalkContext* ctx) {
  std::vector<ExprPtr> below;
  if (!Walk(*q.children[0], *v.children[0], &below, ctx)) return false;
  std::vector<int> mapping(v.children[0]->output_schema.num_columns(), -1);
  for (size_t j = 0; j < v.projections.size(); ++j) {
    const ExprPtr& p = v.projections[j];
    if (p->kind != ExprKind::kColumn) {
      return Reject(ctx, "view projection computes expressions");
    }
    if (p->column_index >= 0 &&
        static_cast<size_t>(p->column_index) < mapping.size() &&
        mapping[static_cast<size_t>(p->column_index)] < 0) {
      mapping[static_cast<size_t>(p->column_index)] = static_cast<int>(j);
    }
  }
  if (!RemapConjuncts(&below, mapping)) {
    return Reject(ctx, "residual references a column the view dropped");
  }
  out->project_exprs.reserve(q.projections.size());
  for (size_t i = 0; i < q.projections.size(); ++i) {
    ExprPtr remapped = q.projections[i]->RemapColumns(mapping);
    if (remapped == nullptr) {
      return Reject(ctx, "query projects a column the view dropped");
    }
    out->project_exprs.push_back(std::move(remapped));
    out->project_names.push_back(q.output_schema.column(i).name);
  }
  out->needs_project = true;
  out->residual = std::move(below);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Predicate ranges.

void ColumnRange::IntersectWith(const ColumnRange& other) {
  if (other.unsatisfiable) unsatisfiable = true;
  if (other.lower.has_value()) {
    if (!lower.has_value() || lower->Compare(*other.lower) < 0) {
      lower = other.lower;
      lower_inclusive = other.lower_inclusive;
    } else if (lower->Compare(*other.lower) == 0) {
      lower_inclusive = lower_inclusive && other.lower_inclusive;
    }
  }
  if (other.upper.has_value()) {
    if (!upper.has_value() || upper->Compare(*other.upper) > 0) {
      upper = other.upper;
      upper_inclusive = other.upper_inclusive;
    } else if (upper->Compare(*other.upper) == 0) {
      upper_inclusive = upper_inclusive && other.upper_inclusive;
    }
  }
  if (lower.has_value() && upper.has_value()) {
    int cmp = lower->Compare(*upper);
    if (cmp > 0 || (cmp == 0 && !(lower_inclusive && upper_inclusive))) {
      unsatisfiable = true;
    }
  }
}

bool ColumnRange::ContainedIn(const ColumnRange& other) const {
  if (unsatisfiable) return true;  // empty set is contained in anything
  if (other.unsatisfiable) return false;
  if (other.lower.has_value()) {
    if (!lower.has_value()) return false;
    int cmp = lower->Compare(*other.lower);
    if (cmp < 0) return false;
    if (cmp == 0 && lower_inclusive && !other.lower_inclusive) return false;
  }
  if (other.upper.has_value()) {
    if (!upper.has_value()) return false;
    int cmp = upper->Compare(*other.upper);
    if (cmp > 0) return false;
    if (cmp == 0 && upper_inclusive && !other.upper_inclusive) return false;
  }
  return true;
}

std::optional<ColumnRange> RangeFromConjunct(const ExprPtr& conjunct) {
  ColumnRange range;
  if (conjunct->kind == ExprKind::kBetween && !conjunct->negated &&
      conjunct->children[0]->kind == ExprKind::kColumn &&
      conjunct->children[1]->kind == ExprKind::kLiteral &&
      conjunct->children[2]->kind == ExprKind::kLiteral) {
    if (conjunct->children[1]->literal.is_null() ||
        conjunct->children[2]->literal.is_null()) {
      return std::nullopt;
    }
    range.column = conjunct->children[0]->column_index;
    range.lower = conjunct->children[1]->literal;
    range.upper = conjunct->children[2]->literal;
    return range;
  }
  if (conjunct->kind != ExprKind::kBinary) return std::nullopt;

  const Expr* lhs = conjunct->children[0].get();
  const Expr* rhs = conjunct->children[1].get();
  sql::BinaryOp op = conjunct->binary_op;
  // Normalize to column <op> literal.
  if (lhs->kind == ExprKind::kLiteral && rhs->kind == ExprKind::kColumn) {
    std::swap(lhs, rhs);
    switch (op) {
      case sql::BinaryOp::kLt:
        op = sql::BinaryOp::kGt;
        break;
      case sql::BinaryOp::kLe:
        op = sql::BinaryOp::kGe;
        break;
      case sql::BinaryOp::kGt:
        op = sql::BinaryOp::kLt;
        break;
      case sql::BinaryOp::kGe:
        op = sql::BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  if (lhs->kind != ExprKind::kColumn || rhs->kind != ExprKind::kLiteral) {
    return std::nullopt;
  }
  if (rhs->literal.is_null()) return std::nullopt;
  range.column = lhs->column_index;
  switch (op) {
    case sql::BinaryOp::kEq:
      range.lower = rhs->literal;
      range.upper = rhs->literal;
      return range;
    case sql::BinaryOp::kLt:
      range.upper = rhs->literal;
      range.upper_inclusive = false;
      return range;
    case sql::BinaryOp::kLe:
      range.upper = rhs->literal;
      return range;
    case sql::BinaryOp::kGt:
      range.lower = rhs->literal;
      range.lower_inclusive = false;
      return range;
    case sql::BinaryOp::kGe:
      range.lower = rhs->literal;
      return range;
    default:
      return std::nullopt;
  }
}

void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->kind == ExprKind::kBinary &&
      pred->binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(pred->children[0], out);
    SplitConjuncts(pred->children[1], out);
    return;
  }
  out->push_back(pred);
}

ExprPtr CanonicalConjunction(std::vector<ExprPtr> conjuncts) {
  std::sort(conjuncts.begin(), conjuncts.end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              Hasher ha, hb;
              a->HashInto(&ha, /*include_literals=*/true);
              b->HashInto(&hb, /*include_literals=*/true);
              return ha.Finish() < hb.Finish();
            });
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out == nullptr ? c
                         : Expr::MakeBinary(sql::BinaryOp::kAnd, out, c);
  }
  return out;
}

std::optional<std::vector<ColumnRange>> ExtractRanges(const ExprPtr& pred) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  std::vector<ColumnRange> ranges;
  for (const ExprPtr& conjunct : conjuncts) {
    std::optional<ColumnRange> range = RangeFromConjunct(conjunct);
    if (!range.has_value()) return std::nullopt;
    MergeRange(&ranges, std::move(*range));
  }
  return ranges;
}

bool Implies(const ExprPtr& p, const ExprPtr& v) {
  if (v == nullptr) return true;   // view keeps everything
  if (p == nullptr) return false;  // query keeps everything, view might not
  auto p_ranges = ExtractRanges(p);
  auto v_ranges = ExtractRanges(v);
  if (!p_ranges.has_value() || !v_ranges.has_value()) return false;
  // Every view constraint must be implied by the query's constraints on the
  // same column.
  for (const ColumnRange& view_range : *v_ranges) {
    auto query_range =
        std::find_if(p_ranges->begin(), p_ranges->end(),
                     [&](const ColumnRange& r) {
                       return r.column == view_range.column;
                     });
    if (query_range == p_ranges->end()) return false;  // unconstrained in p
    if (!query_range->ContainedIn(view_range)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Stage-2 entry points.

bool PlanEquals(const LogicalOp& a_in, const LogicalOp& b_in) {
  const LogicalOp& a = Peel(a_in);
  const LogicalOp& b = Peel(b_in);
  if (a.kind != b.kind || a.children.size() != b.children.size()) {
    return false;
  }
  switch (a.kind) {
    case LogicalOpKind::kScan:
      if (a.dataset_name != b.dataset_name ||
          a.dataset_guid != b.dataset_guid ||
          a.scan_columns != b.scan_columns) {
        return false;
      }
      break;
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
      if (a.view_signature != b.view_signature) return false;
      break;
    case LogicalOpKind::kFilter:
      if (!a.predicate->Equals(*b.predicate)) return false;
      break;
    case LogicalOpKind::kProject:
      if (!SameProjections(a, b)) return false;
      break;
    case LogicalOpKind::kJoin:
      if (a.join_kind != b.join_kind || a.equi_keys != b.equi_keys) {
        return false;
      }
      if ((a.predicate == nullptr) != (b.predicate == nullptr)) return false;
      if (a.predicate != nullptr && !a.predicate->Equals(*b.predicate)) {
        return false;
      }
      break;
    case LogicalOpKind::kAggregate:
      if (!SameAggParams(a, b)) return false;
      break;
    case LogicalOpKind::kSort:
      if (a.sort_keys.size() != b.sort_keys.size()) return false;
      for (size_t i = 0; i < a.sort_keys.size(); ++i) {
        if (a.sort_keys[i].ascending != b.sort_keys[i].ascending ||
            !a.sort_keys[i].expr->Equals(*b.sort_keys[i].expr)) {
          return false;
        }
      }
      break;
    case LogicalOpKind::kLimit:
      if (a.limit != b.limit) return false;
      break;
    case LogicalOpKind::kUdo:
      if (a.udo_name != b.udo_name ||
          a.udo_deterministic != b.udo_deterministic ||
          a.udo_dependency_depth != b.udo_dependency_depth ||
          a.udo_selectivity != b.udo_selectivity ||
          a.udo_cost_per_row != b.udo_cost_per_row) {
        return false;
      }
      break;
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kSpool:
      break;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!PlanEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

SubsumptionResult CheckSubsumption(const LogicalOp& query_in,
                                   const LogicalOp& view_in) {
  SubsumptionResult out;
  WalkContext ctx;
  const LogicalOp& q = Peel(query_in);
  const LogicalOp& v = Peel(view_in);
  bool accepted = false;
  if (q.kind == LogicalOpKind::kAggregate &&
      v.kind == LogicalOpKind::kAggregate && !SameAggParams(q, v)) {
    accepted = RollupRoot(q, v, &out, &ctx);
  } else if (q.kind == LogicalOpKind::kProject &&
             v.kind == LogicalOpKind::kProject && !SameProjections(q, v)) {
    accepted = ProjectRoot(q, v, &out, &ctx);
  } else {
    accepted = Walk(q, v, &out.residual, &ctx);
  }
  if (!accepted) {
    out = SubsumptionResult{};
    out.reject_reason =
        ctx.reject.empty() ? "not in the provable fragment" : ctx.reject;
    return out;
  }
  out.contained = true;
  return out;
}

// ---------------------------------------------------------------------------
// Stage-1 features.

namespace {

uint64_t TableBit(const std::string& name) {
  return uint64_t{1} << (HashString(name).lo % 64);
}

// Lifts the subtree's range conjuncts to `node`'s output ordinals,
// accumulating opaque-conjunct counts and table bits. Drops (and marks
// lossy) whatever cannot be lifted.
std::vector<ColumnRange> LiftRanges(const LogicalOp& node,
                                    SubsumptionFeatures* f) {
  switch (node.kind) {
    case LogicalOpKind::kSpool:
      return LiftRanges(*node.children[0], f);
    case LogicalOpKind::kScan:
      f->table_bits |= TableBit(node.dataset_name);
      return {};
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
      return {};
    case LogicalOpKind::kFilter: {
      std::vector<ColumnRange> ranges = LiftRanges(*node.children[0], f);
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(node.predicate, &conjuncts);
      for (const ExprPtr& c : conjuncts) {
        std::optional<ColumnRange> range = RangeFromConjunct(c);
        if (range.has_value()) {
          MergeRange(&ranges, std::move(*range));
        } else {
          f->num_opaque += 1;
        }
      }
      return ranges;
    }
    case LogicalOpKind::kJoin: {
      std::vector<ColumnRange> left = LiftRanges(*node.children[0], f);
      std::vector<ColumnRange> right = LiftRanges(*node.children[1], f);
      if (node.join_kind == sql::JoinKind::kInner) {
        const int shift =
            static_cast<int>(node.children[0]->output_schema.num_columns());
        for (ColumnRange& r : right) {
          r.column += shift;
          MergeRange(&left, std::move(r));
        }
      } else if (!right.empty()) {
        // The null-extended side's constraints do not hold on the output.
        f->lossy = true;
      }
      return left;
    }
    case LogicalOpKind::kProject: {
      std::vector<ColumnRange> below = LiftRanges(*node.children[0], f);
      std::vector<ColumnRange> lifted;
      for (ColumnRange& r : below) {
        int mapped = -1;
        for (size_t j = 0; j < node.projections.size(); ++j) {
          const ExprPtr& p = node.projections[j];
          if (p->kind == ExprKind::kColumn && p->column_index == r.column) {
            mapped = static_cast<int>(j);
            break;
          }
        }
        if (mapped < 0) {
          f->lossy = true;
          continue;
        }
        r.column = mapped;
        MergeRange(&lifted, std::move(r));
      }
      return lifted;
    }
    case LogicalOpKind::kAggregate: {
      std::vector<ColumnRange> below = LiftRanges(*node.children[0], f);
      std::vector<ColumnRange> lifted;
      for (ColumnRange& r : below) {
        int mapped = -1;
        for (size_t j = 0; j < node.group_by.size(); ++j) {
          const ExprPtr& g = node.group_by[j];
          if (g->kind == ExprKind::kColumn && g->column_index == r.column) {
            mapped = static_cast<int>(j);
            break;
          }
        }
        if (mapped < 0) {
          f->lossy = true;
          continue;
        }
        r.column = mapped;
        MergeRange(&lifted, std::move(r));
      }
      return lifted;
    }
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit:
      // Row values pass through unchanged; a limit's subset still satisfies
      // every constraint of its input.
      return LiftRanges(*node.children[0], f);
    case LogicalOpKind::kUdo: {
      std::vector<ColumnRange> below = LiftRanges(*node.children[0], f);
      if (!below.empty()) f->lossy = true;
      return {};  // opaque transform: nothing survives
    }
    case LogicalOpKind::kUnionAll: {
      for (const LogicalOpPtr& child : node.children) {
        std::vector<ColumnRange> below = LiftRanges(*child, f);
        if (!below.empty()) f->lossy = true;
      }
      return {};
    }
  }
  return {};
}

}  // namespace

SubsumptionFeatures ComputeSubsumptionFeatures(const LogicalOp& root) {
  SubsumptionFeatures f;
  // Find the first structural (non-spool, non-filter) node under the root:
  // a matched pair may diverge there (rollup, projection subset), so when
  // it is an Aggregate/Project the ranges are expressed in its INPUT's
  // ordinals — the deepest level where both sides of any candidate pair are
  // guaranteed to agree on column numbering.
  const LogicalOp* divergence = &root;
  std::vector<const LogicalOp*> top_filters;
  while (divergence->kind == LogicalOpKind::kSpool ||
         divergence->kind == LogicalOpKind::kFilter) {
    if (divergence->kind == LogicalOpKind::kFilter) {
      top_filters.push_back(divergence);
    }
    divergence = divergence->children[0].get();
  }
  std::vector<ColumnRange> ranges;
  if ((divergence->kind == LogicalOpKind::kAggregate ||
       divergence->kind == LogicalOpKind::kProject) &&
      !divergence->children.empty()) {
    ranges = LiftRanges(*divergence->children[0], &f);
    // Map the filters sitting above the divergence node back down through
    // its pure-column outputs; drop (lossy) what does not map.
    const size_t input_arity =
        divergence->children[0]->output_schema.num_columns();
    std::vector<int> down(divergence->output_schema.num_columns(), -1);
    if (divergence->kind == LogicalOpKind::kAggregate) {
      for (size_t j = 0; j < divergence->group_by.size(); ++j) {
        const ExprPtr& g = divergence->group_by[j];
        if (g->kind == ExprKind::kColumn && g->column_index >= 0 &&
            static_cast<size_t>(g->column_index) < input_arity) {
          down[j] = g->column_index;
        }
      }
    } else {
      for (size_t j = 0; j < divergence->projections.size(); ++j) {
        const ExprPtr& p = divergence->projections[j];
        if (p->kind == ExprKind::kColumn && p->column_index >= 0 &&
            static_cast<size_t>(p->column_index) < input_arity) {
          down[j] = p->column_index;
        }
      }
    }
    for (const LogicalOp* filter : top_filters) {
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(filter->predicate, &conjuncts);
      for (const ExprPtr& c : conjuncts) {
        std::optional<ColumnRange> range = RangeFromConjunct(c);
        if (!range.has_value()) {
          f.num_opaque += 1;
          continue;
        }
        if (range->column < 0 ||
            static_cast<size_t>(range->column) >= down.size() ||
            down[static_cast<size_t>(range->column)] < 0) {
          f.lossy = true;
          continue;
        }
        range->column = down[static_cast<size_t>(range->column)];
        MergeRange(&ranges, std::move(*range));
      }
    }
  } else {
    ranges = LiftRanges(root, &f);
  }
  for (const ColumnRange& r : ranges) {
    f.constrained_bits |= uint64_t{1} << (static_cast<uint64_t>(
                              r.column >= 0 ? r.column : 0) %
                                          64);
  }
  f.root_ranges = std::move(ranges);
  return f;
}

bool FeatureMayContain(const SubsumptionFeatures& view,
                       const SubsumptionFeatures& query) {
  // An exact checker acceptance requires identical scans, so differing
  // table sets can never match.
  if (view.table_bits != query.table_bits) return false;
  // Every opaque view conjunct needs an identical query twin; a query with
  // zero opaque conjuncts cannot supply one.
  if (view.num_opaque > 0 && query.num_opaque == 0) return false;
  // Range pruning: the checker demands the query's merged range on every
  // view-constrained column be contained in the view's. The lifted features
  // see the same (or wider) view ranges and the same (or narrower) query
  // ranges, so a root-level violation refutes containment — unless the
  // query lift dropped constraints (lossy), in which case its root ranges
  // understate it and pruning must stand down.
  if (!query.lossy) {
    for (const ColumnRange& vr : view.root_ranges) {
      const uint64_t bit =
          uint64_t{1}
          << (static_cast<uint64_t>(vr.column >= 0 ? vr.column : 0) % 64);
      if ((query.constrained_bits & bit) == 0) return false;
      auto qr = std::find_if(
          query.root_ranges.begin(), query.root_ranges.end(),
          [&](const ColumnRange& r) { return r.column == vr.column; });
      if (qr == query.root_ranges.end()) return false;
      if (!qr->ContainedIn(vr)) return false;
    }
  }
  return true;
}

}  // namespace cloudviews
