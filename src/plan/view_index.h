#ifndef CLOUDVIEWS_PLAN_VIEW_INDEX_H_
#define CLOUDVIEWS_PLAN_VIEW_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "plan/containment.h"
#include "plan/logical_plan.h"
#include "plan/signature.h"

namespace cloudviews {

// Candidate index for generalized view matching. Spooled view definitions
// are registered with their match-class key (filter-stripped skeleton hash)
// and stage-1 feature vector; the optimizer asks for the candidates in a
// query subtree's class and runs the cheap feature filter before the exact
// containment checker. This keeps matching O(candidates-in-class) feature
// comparisons instead of O(total views) exact checks.
//
// Not internally synchronized: like WorkloadRepository, callers serialize
// access (the engine mutates it only during PrepareJob / version changes).
class GeneralizedViewIndex {
 public:
  struct Entry {
    Hash128 strict;             // exact-match signature of the definition
    Hash128 recurring;
    Hash128 class_key;
    SubsumptionFeatures features;
    LogicalOpPtr definition;    // cloned, spool-free view definition subtree
  };

  explicit GeneralizedViewIndex(SignatureOptions options = {})
      : computer_(options) {}

  // Registers a spooled view definition. Deduplicates by strict signature
  // (the same template recurs every day; one definition per instance is
  // enough to prove containment for all of them).
  void Register(const Hash128& strict, const Hash128& recurring,
                LogicalOpPtr definition);

  // All registered definitions whose match class equals `class_key`.
  const std::vector<Entry>& CandidatesFor(const Hash128& class_key) const;

  // Drops everything (runtime version changes invalidate all signatures).
  void Clear();

  // Re-keys the index under new signature options (class keys embed the
  // runtime version, so the index must hash exactly like the optimizer
  // that queries it). Clears all entries.
  void SetSignatureOptions(SignatureOptions options);

  size_t size() const { return registered_.size(); }
  const SignatureComputer& computer() const { return computer_; }

 private:
  SignatureComputer computer_;
  std::unordered_set<Hash128, Hash128Hasher> registered_;
  std::unordered_map<Hash128, std::vector<Entry>, Hash128Hasher> by_class_;
  std::vector<Entry> empty_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_VIEW_INDEX_H_
