#ifndef CLOUDVIEWS_PLAN_BUILDER_H_
#define CLOUDVIEWS_PLAN_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace cloudviews {

// Binds a parsed SQL statement against the dataset catalog, producing a
// logical plan. Column references resolve to ordinals; table references pin
// the dataset GUID current at bind time (queries run against the dataset
// version visible at compilation, mirroring SCOPE's snapshot semantics).
class PlanBuilder {
 public:
  explicit PlanBuilder(const DatasetCatalog* catalog) : catalog_(catalog) {}

  // Builds a plan from a SQL string (parse + bind).
  Result<LogicalOpPtr> BuildFromSql(const std::string& sql) const;

  // Builds a plan from a parsed statement.
  Result<LogicalOpPtr> Build(const sql::SelectStatement& stmt) const;

 private:
  // Scope for name resolution: one entry per visible relation.
  struct RelationBinding {
    std::string qualifier;  // alias if given, else table name
    Schema schema;
    int column_offset = 0;  // ordinal of this relation's first column
  };

  struct BindingScope {
    std::vector<RelationBinding> relations;

    Result<ExprPtr> ResolveColumn(const std::string& qualifier,
                                  const std::string& name) const;
    Schema CombinedSchema() const;
  };

  Result<LogicalOpPtr> BuildQueryBlock(const sql::SelectStatement& stmt) const;
  Result<ExprPtr> BindExpr(const sql::AstExpr& ast,
                           const BindingScope& scope) const;
  Result<LogicalOpPtr> BindScan(const sql::TableRef& ref,
                                BindingScope* scope) const;

  const DatasetCatalog* catalog_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_BUILDER_H_
