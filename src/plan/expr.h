#ifndef CLOUDVIEWS_PLAN_EXPR_H_
#define CLOUDVIEWS_PLAN_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace cloudviews {

// Resolved (bound) expression over a child operator's output row. Column
// references are ordinal; evaluation needs only the input Row.
enum class ExprKind {
  kLiteral,
  kColumn,
  kUnary,
  kBinary,
  kCall,     // scalar function: UPPER, LOWER, ABS, ROUND, LENGTH, SUBSTR
  kBetween,  // children: value, lo, hi
  kInList,   // children: value, item...
  kIsNull,
  kLike,
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  ExprKind kind = ExprKind::kLiteral;

  Value literal;
  int column_index = -1;
  std::string column_name;  // retained for printing / signatures

  sql::UnaryOp unary_op = sql::UnaryOp::kNegate;
  sql::BinaryOp binary_op = sql::BinaryOp::kAdd;

  std::string function_name;
  bool negated = false;
  std::string like_pattern;

  std::vector<ExprPtr> children;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(int index, std::string name);
  static ExprPtr MakeUnary(sql::UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(sql::BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeIsNull(ExprPtr operand, bool negated);
  static ExprPtr MakeLike(ExprPtr operand, std::string pattern, bool negated);
  static ExprPtr MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi, bool negated);
  static ExprPtr MakeInList(std::vector<ExprPtr> value_then_items,
                            bool negated);

  // Evaluates against one input row. Errors (type mismatches, unknown
  // functions) surface as Status — the engine treats them as job failures.
  Result<Value> Evaluate(const Row& row) const;

  // Infers the output type given the input schema (best effort; kNull means
  // "unknown/any", matching semi-structured extraction semantics).
  DataType InferType(const Schema& input) const;

  // Contributes this expression to a signature hash. `include_literals`
  // distinguishes strict signatures (true) from recurring signatures, which
  // discard time-varying parameter values (false).
  void HashInto(Hasher* hasher, bool include_literals) const;

  // Remaps column ordinals through `mapping` (old index -> new index).
  // Returns nullptr if a referenced column has no mapping.
  ExprPtr RemapColumns(const std::vector<int>& mapping) const;

  // Collects all referenced column ordinals into `out` (deduplicated,
  // ascending).
  void CollectColumns(std::vector<int>* out) const;

  // Structural equality (same shape, ops, literals and column ordinals).
  bool Equals(const Expr& other) const;

  std::string ToString() const;
};

// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_EXPR_H_
