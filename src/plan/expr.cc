#include "plan/expr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace cloudviews {

namespace {

std::shared_ptr<Expr> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

Result<Value> EvalBinary(sql::BinaryOp op, const Value& lhs, const Value& rhs) {
  using sql::BinaryOp;
  switch (op) {
    case BinaryOp::kAnd: {
      // Three-valued logic: false AND x = false; null AND true = null.
      if (!lhs.is_null() && lhs.type() == DataType::kBool && !lhs.AsBool()) {
        return Value(false);
      }
      if (!rhs.is_null() && rhs.type() == DataType::kBool && !rhs.AsBool()) {
        return Value(false);
      }
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value(lhs.AsBool() && rhs.AsBool());
    }
    case BinaryOp::kOr: {
      if (!lhs.is_null() && lhs.type() == DataType::kBool && lhs.AsBool()) {
        return Value(true);
      }
      if (!rhs.is_null() && rhs.type() == DataType::kBool && rhs.AsBool()) {
        return Value(true);
      }
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value(lhs.AsBool() || rhs.AsBool());
    }
    default:
      break;
  }

  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  switch (op) {
    case BinaryOp::kEq:
      return Value(lhs.Compare(rhs) == 0);
    case BinaryOp::kNe:
      return Value(lhs.Compare(rhs) != 0);
    case BinaryOp::kLt:
      return Value(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return Value(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return Value(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return Value(lhs.Compare(rhs) >= 0);
    default:
      break;
  }

  // Arithmetic. String + string concatenates; everything else is numeric.
  if (op == BinaryOp::kAdd && lhs.type() == DataType::kString &&
      rhs.type() == DataType::kString) {
    return Value(lhs.AsString() + rhs.AsString());
  }
  const bool both_int =
      lhs.type() == DataType::kInt64 && rhs.type() == DataType::kInt64;
  const bool numeric =
      (lhs.type() == DataType::kInt64 || lhs.type() == DataType::kDouble) &&
      (rhs.type() == DataType::kInt64 || rhs.type() == DataType::kDouble);
  if (!numeric) {
    return Status::InvalidArgument("arithmetic on non-numeric values: " +
                                   lhs.ToString() + " vs " + rhs.ToString());
  }
  if (both_int) {
    int64_t a = lhs.AsInt64();
    int64_t b = rhs.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSubtract:
        return Value(a - b);
      case BinaryOp::kMultiply:
        return Value(a * b);
      case BinaryOp::kDivide:
        if (b == 0) return Status::InvalidArgument("integer division by zero");
        return Value(a / b);
      case BinaryOp::kModulo:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value(a % b);
      default:
        break;
    }
  }
  double a = lhs.NumericValue();
  double b = rhs.NumericValue();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(a + b);
    case BinaryOp::kSubtract:
      return Value(a - b);
    case BinaryOp::kMultiply:
      return Value(a * b);
    case BinaryOp::kDivide:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    case BinaryOp::kModulo:
      if (b == 0.0) return Status::InvalidArgument("modulo by zero");
      return Value(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match: % = any run, _ = any single char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = NewExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumn(int index, std::string name) {
  auto e = NewExpr(ExprKind::kColumn);
  e->column_index = index;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::MakeUnary(sql::UnaryOp op, ExprPtr operand) {
  auto e = NewExpr(ExprKind::kUnary);
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeBinary(sql::BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kBinary);
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = NewExpr(ExprKind::kCall);
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr operand, bool negated) {
  auto e = NewExpr(ExprKind::kIsNull);
  e->negated = negated;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeLike(ExprPtr operand, std::string pattern, bool negated) {
  auto e = NewExpr(ExprKind::kLike);
  e->like_pattern = std::move(pattern);
  e->negated = negated;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = NewExpr(ExprKind::kBetween);
  e->negated = negated;
  e->children.push_back(std::move(v));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

ExprPtr Expr::MakeInList(std::vector<ExprPtr> value_then_items, bool negated) {
  auto e = NewExpr(ExprKind::kInList);
  e->negated = negated;
  e->children = std::move(value_then_items);
  return e;
}

Result<Value> Expr::Evaluate(const Row& row) const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal;
    case ExprKind::kColumn: {
      if (column_index < 0 || static_cast<size_t>(column_index) >= row.size()) {
        return Status::Internal("column index " +
                                std::to_string(column_index) +
                                " out of range for row of arity " +
                                std::to_string(row.size()));
      }
      return row[static_cast<size_t>(column_index)];
    }
    case ExprKind::kUnary: {
      auto v = children[0]->Evaluate(row);
      if (!v.ok()) return v.status();
      const Value& val = v.value();
      if (val.is_null()) return Value::Null();
      if (unary_op == sql::UnaryOp::kNot) {
        if (val.type() != DataType::kBool) {
          return Status::InvalidArgument("NOT applied to non-boolean");
        }
        return Value(!val.AsBool());
      }
      if (val.type() == DataType::kInt64) return Value(-val.AsInt64());
      return Value(-val.NumericValue());
    }
    case ExprKind::kBinary: {
      // AND/OR need lazy-ish handling but we evaluate both: side effects are
      // impossible in this expression language, only errors. Evaluate lhs
      // first and short-circuit where its value already decides the result.
      auto lhs = children[0]->Evaluate(row);
      if (!lhs.ok()) return lhs.status();
      if (binary_op == sql::BinaryOp::kAnd && !lhs.value().is_null() &&
          lhs.value().type() == DataType::kBool && !lhs.value().AsBool()) {
        return Value(false);
      }
      if (binary_op == sql::BinaryOp::kOr && !lhs.value().is_null() &&
          lhs.value().type() == DataType::kBool && lhs.value().AsBool()) {
        return Value(true);
      }
      auto rhs = children[1]->Evaluate(row);
      if (!rhs.ok()) return rhs.status();
      return EvalBinary(binary_op, lhs.value(), rhs.value());
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(children.size());
      for (const ExprPtr& child : children) {
        auto v = child->Evaluate(row);
        if (!v.ok()) return v.status();
        args.push_back(std::move(v).value());
      }
      if (function_name == "UPPER" || function_name == "LOWER") {
        if (args.size() != 1) {
          return Status::InvalidArgument(function_name + " takes 1 argument");
        }
        if (args[0].is_null()) return Value::Null();
        std::string s = args[0].AsString();
        for (char& c : s) {
          c = function_name == "UPPER"
                  ? static_cast<char>(std::toupper(c))
                  : static_cast<char>(std::tolower(c));
        }
        return Value(std::move(s));
      }
      if (function_name == "LENGTH") {
        if (args.size() != 1 || args[0].is_null()) return Value::Null();
        return Value(static_cast<int64_t>(args[0].AsString().size()));
      }
      if (function_name == "ABS") {
        if (args.size() != 1 || args[0].is_null()) return Value::Null();
        if (args[0].type() == DataType::kInt64) {
          return Value(std::abs(args[0].AsInt64()));
        }
        return Value(std::fabs(args[0].NumericValue()));
      }
      if (function_name == "ROUND") {
        if (args.empty() || args[0].is_null()) return Value::Null();
        return Value(std::round(args[0].NumericValue()));
      }
      if (function_name == "SUBSTR") {
        if (args.size() != 3 || args[0].is_null()) return Value::Null();
        const std::string& s = args[0].AsString();
        int64_t start = args[1].AsInt64();  // 1-based
        int64_t len = args[2].AsInt64();
        if (start < 1) start = 1;
        if (static_cast<size_t>(start - 1) >= s.size() || len <= 0) {
          return Value(std::string());
        }
        return Value(s.substr(static_cast<size_t>(start - 1),
                              static_cast<size_t>(len)));
      }
      return Status::NotSupported("unknown scalar function: " + function_name);
    }
    case ExprKind::kBetween: {
      auto v = children[0]->Evaluate(row);
      if (!v.ok()) return v.status();
      auto lo = children[1]->Evaluate(row);
      if (!lo.ok()) return lo.status();
      auto hi = children[2]->Evaluate(row);
      if (!hi.ok()) return hi.status();
      if (v.value().is_null() || lo.value().is_null() || hi.value().is_null()) {
        return Value::Null();
      }
      bool in = v.value().Compare(lo.value()) >= 0 &&
                v.value().Compare(hi.value()) <= 0;
      return Value(negated ? !in : in);
    }
    case ExprKind::kInList: {
      auto v = children[0]->Evaluate(row);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) return Value::Null();
      for (size_t i = 1; i < children.size(); ++i) {
        auto item = children[i]->Evaluate(row);
        if (!item.ok()) return item.status();
        if (!item.value().is_null() && v.value().Compare(item.value()) == 0) {
          return Value(!negated);
        }
      }
      return Value(negated);
    }
    case ExprKind::kIsNull: {
      auto v = children[0]->Evaluate(row);
      if (!v.ok()) return v.status();
      bool is_null = v.value().is_null();
      return Value(negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      auto v = children[0]->Evaluate(row);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) return Value::Null();
      if (v.value().type() != DataType::kString) {
        return Status::InvalidArgument("LIKE applied to non-string");
      }
      bool m = LikeMatch(v.value().AsString(), like_pattern);
      return Value(negated ? !m : m);
    }
  }
  return Status::Internal("unhandled expression kind");
}

DataType Expr::InferType(const Schema& input) const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type();
    case ExprKind::kColumn:
      if (column_index >= 0 &&
          static_cast<size_t>(column_index) < input.num_columns()) {
        return input.column(static_cast<size_t>(column_index)).type;
      }
      return DataType::kNull;
    case ExprKind::kUnary:
      if (unary_op == sql::UnaryOp::kNot) return DataType::kBool;
      return children[0]->InferType(input);
    case ExprKind::kBinary:
      switch (binary_op) {
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNe:
        case sql::BinaryOp::kLt:
        case sql::BinaryOp::kLe:
        case sql::BinaryOp::kGt:
        case sql::BinaryOp::kGe:
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr:
          return DataType::kBool;
        default: {
          DataType lhs = children[0]->InferType(input);
          DataType rhs = children[1]->InferType(input);
          if (lhs == DataType::kString && rhs == DataType::kString) {
            return DataType::kString;
          }
          if (lhs == DataType::kDouble || rhs == DataType::kDouble ||
              binary_op == sql::BinaryOp::kDivide) {
            return DataType::kDouble;
          }
          return DataType::kInt64;
        }
      }
    case ExprKind::kCall:
      if (function_name == "UPPER" || function_name == "LOWER" ||
          function_name == "SUBSTR") {
        return DataType::kString;
      }
      if (function_name == "LENGTH") return DataType::kInt64;
      if (function_name == "ROUND" || function_name == "ABS") {
        return children.empty() ? DataType::kDouble
                                : children[0]->InferType(input);
      }
      return DataType::kNull;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
      return DataType::kBool;
  }
  return DataType::kNull;
}

void Expr::HashInto(Hasher* hasher, bool include_literals) const {
  hasher->Update(static_cast<uint64_t>(kind) + 0x1000);
  switch (kind) {
    case ExprKind::kLiteral:
      if (include_literals) {
        literal.HashInto(hasher);
      } else {
        // Recurring signatures keep only the literal's type, treating the
        // value as a time-varying parameter.
        hasher->Update(static_cast<uint64_t>(literal.type()));
      }
      break;
    case ExprKind::kColumn:
      hasher->Update(uint64_t{0xC01u});
      hasher->Update(static_cast<uint64_t>(column_index));
      break;
    case ExprKind::kUnary:
      hasher->Update(static_cast<uint64_t>(unary_op));
      break;
    case ExprKind::kBinary:
      hasher->Update(static_cast<uint64_t>(binary_op));
      break;
    case ExprKind::kCall:
      hasher->Update(std::string_view(function_name));
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      hasher->Update(negated);
      break;
    case ExprKind::kLike:
      hasher->Update(negated);
      if (include_literals) {
        hasher->Update(std::string_view(like_pattern));
      }
      break;
  }
  hasher->Update(uint64_t{children.size()});
  for (const ExprPtr& child : children) {
    child->HashInto(hasher, include_literals);
  }
}

ExprPtr Expr::RemapColumns(const std::vector<int>& mapping) const {
  if (kind == ExprKind::kColumn) {
    if (column_index < 0 ||
        static_cast<size_t>(column_index) >= mapping.size() ||
        mapping[static_cast<size_t>(column_index)] < 0) {
      return nullptr;
    }
    return MakeColumn(mapping[static_cast<size_t>(column_index)], column_name);
  }
  auto copy = std::make_shared<Expr>(*this);
  copy->children.clear();
  for (const ExprPtr& child : children) {
    ExprPtr remapped = child->RemapColumns(mapping);
    if (remapped == nullptr) return nullptr;
    copy->children.push_back(std::move(remapped));
  }
  return copy;
}

void Expr::CollectColumns(std::vector<int>* out) const {
  if (kind == ExprKind::kColumn && column_index >= 0) {
    if (std::find(out->begin(), out->end(), column_index) == out->end()) {
      out->push_back(column_index);
    }
  }
  for (const ExprPtr& child : children) child->CollectColumns(out);
  std::sort(out->begin(), out->end());
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || children.size() != other.children.size()) {
    return false;
  }
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      if (!literal.is_null() && literal.Compare(other.literal) != 0) {
        return false;
      }
      if (literal.type() != other.literal.type()) return false;
      break;
    case ExprKind::kColumn:
      if (column_index != other.column_index) return false;
      break;
    case ExprKind::kUnary:
      if (unary_op != other.unary_op) return false;
      break;
    case ExprKind::kBinary:
      if (binary_op != other.binary_op) return false;
      break;
    case ExprKind::kCall:
      if (function_name != other.function_name) return false;
      break;
    case ExprKind::kLike:
      if (like_pattern != other.like_pattern || negated != other.negated) {
        return false;
      }
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      if (negated != other.negated) return false;
      break;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == DataType::kString ? "'" + literal.ToString() + "'"
                                                 : literal.ToString();
    case ExprKind::kColumn:
      return column_name.empty() ? "$" + std::to_string(column_index)
                                 : column_name;
    case ExprKind::kUnary:
      return (unary_op == sql::UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case ExprKind::kBinary: {
      const char* op = "?";
      switch (binary_op) {
        case sql::BinaryOp::kAdd:
          op = "+";
          break;
        case sql::BinaryOp::kSubtract:
          op = "-";
          break;
        case sql::BinaryOp::kMultiply:
          op = "*";
          break;
        case sql::BinaryOp::kDivide:
          op = "/";
          break;
        case sql::BinaryOp::kModulo:
          op = "%";
          break;
        case sql::BinaryOp::kEq:
          op = "=";
          break;
        case sql::BinaryOp::kNe:
          op = "<>";
          break;
        case sql::BinaryOp::kLt:
          op = "<";
          break;
        case sql::BinaryOp::kLe:
          op = "<=";
          break;
        case sql::BinaryOp::kGt:
          op = ">";
          break;
        case sql::BinaryOp::kGe:
          op = ">=";
          break;
        case sql::BinaryOp::kAnd:
          op = "AND";
          break;
        case sql::BinaryOp::kOr:
          op = "OR";
          break;
      }
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    }
    case ExprKind::kCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kInList: {
      std::string out =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE '" : " LIKE '") +
             like_pattern + "'";
  }
  return "?";
}

}  // namespace cloudviews
