#ifndef CLOUDVIEWS_PLAN_CONTAINMENT_H_
#define CLOUDVIEWS_PLAN_CONTAINMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "plan/expr.h"
#include "plan/logical_plan.h"

namespace cloudviews {

// Generalized (containment-based) view matching, paper section 5.3. Full
// query containment is NP-complete; like the production follow-up work this
// implements the decidable fragment that covers most shared subexpressions
// in practice: identical operator skeletons whose filters differ by
// conjunctions of {=, <, <=, >, >=, BETWEEN} comparisons between a column
// and literals, plus root-level projection-subset and group-by-rollup
// divergence. Everything here is sound-not-complete: an unknown shape is a
// rejection, never a wrong acceptance.

// ---------------------------------------------------------------------------
// Predicate ranges (the decidable filter fragment).

// Per-column value interval. Bounds are Values (numeric or string, compared
// with Value::Compare); unset = unbounded.
struct ColumnRange {
  int column = -1;
  std::optional<Value> lower;
  bool lower_inclusive = true;
  std::optional<Value> upper;
  bool upper_inclusive = true;
  bool unsatisfiable = false;

  // Intersects another range on the same column.
  void IntersectWith(const ColumnRange& other);

  // True if every value in `this` also lies in `other`.
  bool ContainedIn(const ColumnRange& other) const;
};

// Tries to turn one conjunct into a ColumnRange. Supported shapes:
//   col <op> literal, literal <op> col, col BETWEEN lit AND lit.
// Everything else (ORs, function calls, cross-column comparisons,
// negations, null literals) is "opaque" and returns nullopt.
std::optional<ColumnRange> RangeFromConjunct(const ExprPtr& conjunct);

// Extracts per-column ranges from a conjunctive predicate. Returns nullopt
// when the predicate contains an opaque conjunct.
std::optional<std::vector<ColumnRange>> ExtractRanges(const ExprPtr& pred);

// `Implies(p, v)` returns true when every row satisfying p also satisfies v
// — i.e. a view filtered by v can answer a query filtered by p with a
// compensating filter.
bool Implies(const ExprPtr& p, const ExprPtr& v);

// Splits a predicate into its AND-conjunct list (left-deep flattening).
void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out);

// Folds conjuncts back into one predicate in canonical (ascending strict
// expression hash) order, matching the normalizer's conjunct ordering.
// Returns nullptr for an empty list.
ExprPtr CanonicalConjunction(std::vector<ExprPtr> conjuncts);

// ---------------------------------------------------------------------------
// Stage-2: the exact containment checker.

// Deep structural equality of plan subtrees (kinds, parameters, expression
// trees, schemas) modulo spool transparency.
bool PlanEquals(const LogicalOp& a, const LogicalOp& b);

// The proof object CheckSubsumption emits on success: how to compensate a
// scan of the view so it reproduces the query subtree byte-for-byte.
// Compensation applies in order: residual filter, then re-aggregation OR
// projection (at most one of the two; both reference view output ordinals).
struct SubsumptionResult {
  bool contained = false;
  std::string reject_reason;

  // Residual filter conjuncts over the view's output schema. Applying their
  // conjunction to the view output yields the query subtree's rows (before
  // any re-aggregation / projection compensation). Empty = no filtering.
  std::vector<ExprPtr> residual;

  // Rollup compensation: the query groups by a subset of the view's group
  // keys, so the (filtered) view output is re-aggregated. Group exprs and
  // aggregate args are column refs into the view output schema.
  bool needs_reaggregate = false;
  std::vector<ExprPtr> reaggregate_group_by;
  std::vector<AggregateSpec> reaggregate_aggs;

  // Projection compensation: the query projects a subset / rearrangement of
  // the view's projected columns. Exprs reference view output ordinals.
  bool needs_project = false;
  std::vector<ExprPtr> project_exprs;
  std::vector<std::string> project_names;
};

// Proves (or declines to prove) that the materialized result of `view`'s
// definition answers the `query` subtree. On success the returned
// compensation recipe is exact: applying it to the view's rows produces the
// query subtree's output, byte for byte. Rejections carry a reason for
// diagnostics; they never mean "definitely not contained", only "not in the
// provable fragment".
SubsumptionResult CheckSubsumption(const LogicalOp& query,
                                   const LogicalOp& view);

// ---------------------------------------------------------------------------
// Stage-1: cheap per-signature feature vectors. The workload repository
// indexes these so candidate pruning is O(candidates-in-class) feature
// comparisons instead of O(n) exact checks.

struct SubsumptionFeatures {
  // One bit per base dataset name (hashed into 64 buckets).
  uint64_t table_bits = 0;
  // Number of filter conjuncts anywhere in the subtree that fall outside
  // the range fragment (RangeFromConjunct fails on them).
  int num_opaque = 0;
  // True when some range conjunct could not be lifted to the feature root
  // (blocked by a UDO, union, outer-join null side, computed projection...).
  // A lossy query side disables range pruning — its root ranges understate
  // its constraints.
  bool lossy = false;
  // Range conjuncts lifted and merged per column of the feature root's
  // output. The feature root is the subtree root with one trailing
  // Project/Aggregate (and any spools) peeled off, so root-divergent pairs
  // (rollup, projection subset) still talk about the same ordinals.
  std::vector<ColumnRange> root_ranges;
  // Bit per constrained root column (ordinal % 64) for a quick reject.
  uint64_t constrained_bits = 0;
};

// Computes the feature vector of a subtree (view definition or query).
SubsumptionFeatures ComputeSubsumptionFeatures(const LogicalOp& root);

// Stage-1 predicate: false means "CheckSubsumption(query, view) provably
// rejects" — pruning is sound because every accepted pair passes (see
// DESIGN.md "Generalized matching" for the argument). True means "run the
// exact checker".
bool FeatureMayContain(const SubsumptionFeatures& view,
                       const SubsumptionFeatures& query);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_CONTAINMENT_H_
