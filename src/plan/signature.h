#ifndef CLOUDVIEWS_PLAN_SIGNATURE_H_
#define CLOUDVIEWS_PLAN_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "plan/logical_plan.h"

namespace cloudviews {

// Controls signature computation (paper sections 2.3 and 4).
struct SignatureOptions {
  // Engine/runtime version. Compilation or optimizer-representation changes
  // alter signatures in production; we model that with an explicit version
  // that participates in every hash. Bumping it invalidates all views.
  uint64_t runtime_version = 1;

  // UDOs whose library dependency chains exceed this depth are skipped for
  // reuse ("we skip any computation reuse if the dependency chain is too
  // long") — traversing them would slow compilation unacceptably.
  int max_udo_dependency_depth = 16;
};

// Per-node signature output.
struct NodeSignature {
  const LogicalOp* node = nullptr;
  // Strict signature: uniquely captures the subexpression instance,
  // including the exact inputs (dataset GUIDs) used.
  Hash128 strict;
  // Recurring signature: discards time-varying attributes (parameter
  // literal values, input GUIDs); stable across recurrences of a template.
  Hash128 recurring;
  // Reuse eligibility (false for subtrees with non-deterministic UDOs,
  // over-deep dependency chains, or spool/view internals).
  bool eligible = true;
  std::string ineligible_reason;
  // Size of this subexpression in operators; selection prefers big subtrees.
  size_t subtree_size = 1;
};

// Computes strict + recurring signatures for every node of a plan,
// bottom-up. The returned vector is in post-order (children before parents);
// the final element is the plan root.
class SignatureComputer {
 public:
  explicit SignatureComputer(SignatureOptions options = {})
      : options_(options) {}

  std::vector<NodeSignature> ComputeAll(const LogicalOp& root) const;

  // Signature of a single subtree root (convenience; recomputes children).
  NodeSignature Compute(const LogicalOp& node) const;

  // Match-class key for generalized (containment) matching: a strict-style
  // hash of the filter-stripped operator skeleton. Filters and spools are
  // transparent; Aggregate/Project contribute only their kind (their
  // parameters may legally diverge at the root of a subsumed pair); every
  // other operator hashes its strict parameters. Two subtrees the
  // containment checker could ever pair always share a class key, so the
  // workload repository can bucket candidates by it.
  Hash128 ComputeMatchClass(const LogicalOp& node) const;

  const SignatureOptions& options() const { return options_; }

 private:
  NodeSignature ComputeNode(const LogicalOp& node,
                            std::vector<NodeSignature>* out) const;

  SignatureOptions options_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_SIGNATURE_H_
