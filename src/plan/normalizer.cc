#include "plan/normalizer.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"

namespace cloudviews {

namespace {

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary &&
      expr->binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(expr->children[0], out);
    CollectConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

// Canonical conjunct order: by strict-style hash of the expression.
void SortConjuncts(std::vector<ExprPtr>* conjuncts) {
  std::sort(conjuncts->begin(), conjuncts->end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              Hasher ha, hb;
              a->HashInto(&ha, /*include_literals=*/true);
              b->HashInto(&hb, /*include_literals=*/true);
              return ha.Finish() < hb.Finish();
            });
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out == nullptr ? c
                         : Expr::MakeBinary(sql::BinaryOp::kAnd, out, c);
  }
  return out;
}

// Applies pending filter conjuncts onto `node` (all referencing its output
// columns) and returns the filtered plan.
LogicalOpPtr ApplyFilters(LogicalOpPtr node, std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return node;
  SortConjuncts(&conjuncts);
  return LogicalOp::Filter(std::move(node), AndAll(conjuncts));
}

// Recursive normalization: `pending` carries filter conjuncts pushed from
// above, expressed over this node's output columns.
LogicalOpPtr NormalizeNode(const LogicalOp& node,
                           std::vector<ExprPtr> pending) {
  switch (node.kind) {
    case LogicalOpKind::kFilter: {
      // Merge this filter's conjuncts into the pending set and vanish.
      CollectConjuncts(node.predicate, &pending);
      return NormalizeNode(*node.children[0], std::move(pending));
    }
    case LogicalOpKind::kJoin: {
      size_t left_arity = node.children[0]->output_schema.num_columns();
      size_t right_arity = node.children[1]->output_schema.num_columns();
      std::vector<ExprPtr> to_left;
      std::vector<ExprPtr> to_right;
      std::vector<ExprPtr> stay;
      const bool left_join = node.join_kind == sql::JoinKind::kLeft;
      for (ExprPtr& conjunct : pending) {
        std::vector<int> cols;
        conjunct->CollectColumns(&cols);
        bool all_left = true;
        bool all_right = true;
        for (int col : cols) {
          if (static_cast<size_t>(col) >= left_arity) all_left = false;
          if (static_cast<size_t>(col) < left_arity) all_right = false;
        }
        if (all_left && !cols.empty()) {
          to_left.push_back(std::move(conjunct));
        } else if (all_right && !cols.empty() && !left_join) {
          // Remap to the right child's ordinals.
          std::vector<int> mapping(left_arity + right_arity, -1);
          for (size_t i = 0; i < right_arity; ++i) {
            mapping[left_arity + i] = static_cast<int>(i);
          }
          ExprPtr remapped = conjunct->RemapColumns(mapping);
          if (remapped != nullptr) {
            to_right.push_back(std::move(remapped));
          } else {
            stay.push_back(std::move(conjunct));
          }
        } else {
          stay.push_back(std::move(conjunct));
        }
      }
      LogicalOpPtr left = NormalizeNode(*node.children[0], std::move(to_left));
      LogicalOpPtr right =
          NormalizeNode(*node.children[1], std::move(to_right));
      auto join = std::make_shared<LogicalOp>(node);
      join->children = {std::move(left), std::move(right)};
      return ApplyFilters(std::move(join), std::move(stay));
    }
    case LogicalOpKind::kUnionAll: {
      // Pending conjuncts replicate into every branch (same output schema).
      auto copy = std::make_shared<LogicalOp>(node);
      copy->children.clear();
      for (const LogicalOpPtr& child : node.children) {
        copy->children.push_back(NormalizeNode(*child, pending));
      }
      return copy;
    }
    case LogicalOpKind::kScan:
    case LogicalOpKind::kViewScan: {
      auto copy = std::make_shared<LogicalOp>(node);
      return ApplyFilters(std::move(copy), std::move(pending));
    }
    default: {
      // Opaque or shape-changing operators (project, aggregate, sort,
      // limit, UDO, spool): normalize children with no pending filters and
      // re-apply the pending set above this node.
      auto copy = std::make_shared<LogicalOp>(node);
      copy->children.clear();
      for (const LogicalOpPtr& child : node.children) {
        copy->children.push_back(NormalizeNode(*child, {}));
      }
      return ApplyFilters(std::move(copy), std::move(pending));
    }
  }
}

// --- Column pruning -----------------------------------------------------------

// Result of pruning one subtree: the rewritten node plus the mapping from
// the old output ordinals to the new ones (-1 = column dropped).
struct Pruned {
  LogicalOpPtr node;
  std::vector<int> mapping;
};

std::vector<int> IdentityMapping(size_t n) {
  std::vector<int> mapping(n);
  for (size_t i = 0; i < n; ++i) mapping[i] = static_cast<int>(i);
  return mapping;
}

// `required` holds the ordinals of node's output the parent needs (sorted).
Pruned PruneNode(const LogicalOp& node, std::vector<int> required);

// Keeps every output column: used below opaque barriers.
Pruned PruneKeepAll(const LogicalOp& node) {
  std::vector<int> all(node.output_schema.num_columns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return PruneNode(node, std::move(all));
}

void AddRequired(std::vector<int>* required, const ExprPtr& expr) {
  if (expr == nullptr) return;
  std::vector<int> cols;
  expr->CollectColumns(&cols);
  for (int c : cols) {
    if (std::find(required->begin(), required->end(), c) == required->end()) {
      required->push_back(c);
    }
  }
}

Pruned PruneNode(const LogicalOp& node, std::vector<int> required) {
  std::sort(required.begin(), required.end());
  switch (node.kind) {
    case LogicalOpKind::kScan: {
      size_t arity = node.output_schema.num_columns();
      if (required.size() == arity) {
        return {std::make_shared<LogicalOp>(node), IdentityMapping(arity)};
      }
      // Narrow the scan itself: it emits only the required columns.
      auto scan = std::make_shared<LogicalOp>(node);
      Schema schema;
      std::vector<int> columns;
      std::vector<int> mapping(arity, -1);
      for (size_t i = 0; i < required.size(); ++i) {
        int col = required[i];
        mapping[static_cast<size_t>(col)] = static_cast<int>(i);
        // Compose with a previous pruning pass, if any.
        columns.push_back(node.scan_columns.empty()
                              ? col
                              : node.scan_columns[static_cast<size_t>(col)]);
        const ColumnDef& def =
            node.output_schema.column(static_cast<size_t>(col));
        schema.AddColumn(def.name, def.type);
      }
      scan->scan_columns = std::move(columns);
      scan->output_schema = std::move(schema);
      return {std::move(scan), std::move(mapping)};
    }
    case LogicalOpKind::kViewScan: {
      // A view scan's identity is the materialized subexpression; narrowing
      // it would break the signature. Pruning stops here.
      return {std::make_shared<LogicalOp>(node),
              IdentityMapping(node.output_schema.num_columns())};
    }
    case LogicalOpKind::kFilter: {
      std::vector<int> child_required = required;
      AddRequired(&child_required, node.predicate);
      Pruned child = PruneNode(*node.children[0], std::move(child_required));
      ExprPtr predicate = node.predicate->RemapColumns(child.mapping);
      if (predicate == nullptr) return PruneKeepAll(node);
      LogicalOpPtr filter = LogicalOp::Filter(child.node, predicate);
      // Filter output ordinals = child output ordinals.
      return {std::move(filter), std::move(child.mapping)};
    }
    case LogicalOpKind::kProject: {
      // Keep only the required projections (parents see them remapped).
      std::vector<int> child_required;
      std::vector<ExprPtr> kept;
      std::vector<std::string> names;
      std::vector<int> mapping(node.projections.size(), -1);
      for (int col : required) {
        mapping[static_cast<size_t>(col)] = static_cast<int>(kept.size());
        kept.push_back(node.projections[static_cast<size_t>(col)]);
        names.push_back(
            node.output_schema.column(static_cast<size_t>(col)).name);
        AddRequired(&child_required, kept.back());
      }
      Pruned child = PruneNode(*node.children[0], std::move(child_required));
      for (ExprPtr& expr : kept) {
        ExprPtr remapped = expr->RemapColumns(child.mapping);
        if (remapped == nullptr) return PruneKeepAll(node);
        expr = std::move(remapped);
      }
      return {LogicalOp::Project(child.node, std::move(kept),
                                 std::move(names)),
              std::move(mapping)};
    }
    case LogicalOpKind::kJoin: {
      size_t left_arity = node.children[0]->output_schema.num_columns();
      size_t right_arity = node.children[1]->output_schema.num_columns();
      std::vector<int> left_required;
      std::vector<int> right_required;
      for (int col : required) {
        if (static_cast<size_t>(col) < left_arity) {
          left_required.push_back(col);
        } else {
          right_required.push_back(col - static_cast<int>(left_arity));
        }
      }
      for (const auto& [l, r] : node.equi_keys) {
        if (std::find(left_required.begin(), left_required.end(), l) ==
            left_required.end()) {
          left_required.push_back(l);
        }
        if (std::find(right_required.begin(), right_required.end(), r) ==
            right_required.end()) {
          right_required.push_back(r);
        }
      }
      if (node.predicate != nullptr) {
        std::vector<int> cols;
        node.predicate->CollectColumns(&cols);
        for (int c : cols) {
          if (static_cast<size_t>(c) < left_arity) {
            if (std::find(left_required.begin(), left_required.end(), c) ==
                left_required.end()) {
              left_required.push_back(c);
            }
          } else {
            int rc = c - static_cast<int>(left_arity);
            if (std::find(right_required.begin(), right_required.end(), rc) ==
                right_required.end()) {
              right_required.push_back(rc);
            }
          }
        }
      }
      Pruned left = PruneNode(*node.children[0], std::move(left_required));
      Pruned right = PruneNode(*node.children[1], std::move(right_required));
      size_t new_left_arity = left.node->output_schema.num_columns();

      // Rebuild the join with remapped keys and predicate.
      auto join = std::make_shared<LogicalOp>(node);
      join->children = {left.node, right.node};
      join->equi_keys.clear();
      for (const auto& [l, r] : node.equi_keys) {
        join->equi_keys.emplace_back(left.mapping[static_cast<size_t>(l)],
                                     right.mapping[static_cast<size_t>(r)]);
      }
      if (node.predicate != nullptr) {
        std::vector<int> combined(left_arity + right_arity, -1);
        for (size_t i = 0; i < left_arity; ++i) combined[i] = left.mapping[i];
        for (size_t i = 0; i < right_arity; ++i) {
          combined[left_arity + i] =
              right.mapping[i] < 0
                  ? -1
                  : right.mapping[i] + static_cast<int>(new_left_arity);
        }
        join->predicate = node.predicate->RemapColumns(combined);
        if (join->predicate == nullptr) return PruneKeepAll(node);
      }
      // Output schema = concatenation of pruned children.
      Schema schema;
      for (const ColumnDef& col : left.node->output_schema.columns()) {
        schema.AddColumn(col.name, col.type);
      }
      for (const ColumnDef& col : right.node->output_schema.columns()) {
        schema.AddColumn(col.name, col.type);
      }
      join->output_schema = std::move(schema);
      std::vector<int> mapping(left_arity + right_arity, -1);
      for (size_t i = 0; i < left_arity; ++i) mapping[i] = left.mapping[i];
      for (size_t i = 0; i < right_arity; ++i) {
        mapping[left_arity + i] =
            right.mapping[i] < 0
                ? -1
                : right.mapping[i] + static_cast<int>(new_left_arity);
      }
      return {std::move(join), std::move(mapping)};
    }
    case LogicalOpKind::kAggregate: {
      std::vector<int> child_required;
      for (const ExprPtr& key : node.group_by) AddRequired(&child_required, key);
      for (const AggregateSpec& agg : node.aggregates) {
        AddRequired(&child_required, agg.arg);
      }
      Pruned child = PruneNode(*node.children[0], std::move(child_required));
      std::vector<ExprPtr> keys;
      for (const ExprPtr& key : node.group_by) {
        ExprPtr remapped = key->RemapColumns(child.mapping);
        if (remapped == nullptr) return PruneKeepAll(node);
        keys.push_back(std::move(remapped));
      }
      std::vector<AggregateSpec> aggs;
      for (const AggregateSpec& agg : node.aggregates) {
        AggregateSpec copy = agg;
        if (copy.arg != nullptr) {
          copy.arg = copy.arg->RemapColumns(child.mapping);
          if (copy.arg == nullptr) return PruneKeepAll(node);
        }
        aggs.push_back(std::move(copy));
      }
      LogicalOpPtr rebuilt =
          LogicalOp::Aggregate(child.node, std::move(keys), std::move(aggs));
      return {std::move(rebuilt),
              IdentityMapping(node.output_schema.num_columns())};
    }
    case LogicalOpKind::kSort: {
      std::vector<int> child_required = required;
      for (const SortKey& key : node.sort_keys) {
        AddRequired(&child_required, key.expr);
      }
      Pruned child = PruneNode(*node.children[0], std::move(child_required));
      auto sort = std::make_shared<LogicalOp>(node);
      sort->children = {child.node};
      sort->output_schema = child.node->output_schema;
      sort->sort_keys.clear();
      for (const SortKey& key : node.sort_keys) {
        ExprPtr remapped = key.expr->RemapColumns(child.mapping);
        if (remapped == nullptr) return PruneKeepAll(node);
        sort->sort_keys.push_back({std::move(remapped), key.ascending});
      }
      return {std::move(sort), std::move(child.mapping)};
    }
    case LogicalOpKind::kLimit: {
      Pruned child = PruneNode(*node.children[0], std::move(required));
      auto limit = std::make_shared<LogicalOp>(node);
      limit->children = {child.node};
      limit->output_schema = child.node->output_schema;
      return {std::move(limit), std::move(child.mapping)};
    }
    default: {
      // Opaque barriers (UDO, UnionAll, Spool): every child column must
      // survive, and the output keeps its full arity. Children are still
      // pruned internally with full requirements.
      auto copy = std::make_shared<LogicalOp>(node);
      copy->children.clear();
      for (const LogicalOpPtr& child : node.children) {
        copy->children.push_back(PruneKeepAll(*child).node);
      }
      return {std::move(copy),
              IdentityMapping(node.output_schema.num_columns())};
    }
  }
}

}  // namespace

LogicalOpPtr PlanNormalizer::Normalize(const LogicalOpPtr& plan) {
  return NormalizeNode(*plan, {});
}

LogicalOpPtr PlanNormalizer::PruneColumns(const LogicalOpPtr& plan) {
  std::vector<int> all(plan->output_schema.num_columns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return PruneNode(*plan, std::move(all)).node;
}

}  // namespace cloudviews
