#include "plan/view_index.h"

#include <utility>

namespace cloudviews {

void GeneralizedViewIndex::Register(const Hash128& strict,
                                    const Hash128& recurring,
                                    LogicalOpPtr definition) {
  if (definition == nullptr) return;
  if (!registered_.insert(strict).second) return;
  Entry entry;
  entry.strict = strict;
  entry.recurring = recurring;
  entry.class_key = computer_.ComputeMatchClass(*definition);
  entry.features = ComputeSubsumptionFeatures(*definition);
  entry.definition = std::move(definition);
  by_class_[entry.class_key].push_back(std::move(entry));
}

const std::vector<GeneralizedViewIndex::Entry>&
GeneralizedViewIndex::CandidatesFor(const Hash128& class_key) const {
  auto it = by_class_.find(class_key);
  return it == by_class_.end() ? empty_ : it->second;
}

void GeneralizedViewIndex::Clear() {
  registered_.clear();
  by_class_.clear();
}

void GeneralizedViewIndex::SetSignatureOptions(SignatureOptions options) {
  computer_ = SignatureComputer(options);
  Clear();
}

}  // namespace cloudviews
