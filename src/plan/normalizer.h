#ifndef CLOUDVIEWS_PLAN_NORMALIZER_H_
#define CLOUDVIEWS_PLAN_NORMALIZER_H_

#include "plan/logical_plan.h"

namespace cloudviews {

// Plan normalization. CloudViews matches "the same logical query
// subexpressions (with some normalization)": two queries only share a
// signature if they compile to the same canonical sub-plan. The normalizer
// applies the semantics-preserving rewrites that make syntactically
// different-but-equivalent plans converge:
//
//   * filter cascades merge into one conjunct set,
//   * filter conjuncts push below inner joins to the side they reference
//     (left side only for LEFT joins — the null-extended side cannot be
//     pre-filtered),
//   * conjuncts are re-ordered canonically (by expression hash), so
//     `a AND b` and `b AND a` produce identical signatures.
//
// Pushdown stops at opaque or shape-changing operators (UDOs, aggregates,
// projections), where movement is unsafe or would need full column
// provenance.
class PlanNormalizer {
 public:
  // Returns a normalized deep copy; the input plan is untouched.
  static LogicalOpPtr Normalize(const LogicalOpPtr& plan);

  // Column pruning (opt-in): narrows every scan to the columns actually
  // referenced above it, remapping ordinals throughout. Shrinks both
  // intermediate rows and — more importantly for CloudViews — the storage
  // footprint of materialized subexpressions. Opaque operators (UDOs,
  // union branches) act as pruning barriers. Idempotent.
  static LogicalOpPtr PruneColumns(const LogicalOpPtr& plan);
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_NORMALIZER_H_
