#include "plan/logical_plan.h"

#include <algorithm>
#include <set>

namespace cloudviews {

const char* LogicalOpKindName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
      return "Scan";
    case LogicalOpKind::kViewScan:
      return "ViewScan";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kAggregate:
      return "Aggregate";
    case LogicalOpKind::kSort:
      return "Sort";
    case LogicalOpKind::kLimit:
      return "Limit";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kUdo:
      return "Udo";
    case LogicalOpKind::kSpool:
      return "Spool";
    case LogicalOpKind::kSharedScan:
      return "SharedScan";
  }
  return "Unknown";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kHash:
      return "Hash";
    case JoinAlgorithm::kMerge:
      return "Merge";
    case JoinAlgorithm::kLoop:
      return "Loop";
  }
  return "?";
}

LogicalOpPtr LogicalOp::Scan(std::string dataset_name, std::string guid,
                             Schema schema) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kScan;
  op->dataset_name = std::move(dataset_name);
  op->dataset_guid = std::move(guid);
  op->output_schema = std::move(schema);
  return op;
}

LogicalOpPtr LogicalOp::ViewScan(Hash128 signature, std::string path,
                                 Schema schema) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kViewScan;
  op->view_signature = signature;
  op->view_path = std::move(path);
  op->output_schema = std::move(schema);
  return op;
}

LogicalOpPtr LogicalOp::Filter(LogicalOpPtr child, ExprPtr predicate) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kFilter;
  op->output_schema = child->output_schema;
  op->children.push_back(std::move(child));
  op->predicate = std::move(predicate);
  return op;
}

LogicalOpPtr LogicalOp::Project(LogicalOpPtr child, std::vector<ExprPtr> exprs,
                                std::vector<std::string> names) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kProject;
  Schema schema;
  for (size_t i = 0; i < exprs.size(); ++i) {
    schema.AddColumn(i < names.size() ? names[i] : "col" + std::to_string(i),
                     exprs[i]->InferType(child->output_schema));
  }
  op->output_schema = std::move(schema);
  op->children.push_back(std::move(child));
  op->projections = std::move(exprs);
  return op;
}

LogicalOpPtr LogicalOp::Join(LogicalOpPtr left, LogicalOpPtr right,
                             sql::JoinKind kind, ExprPtr condition) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kJoin;
  op->join_kind = kind;
  Schema schema;
  for (const ColumnDef& col : left->output_schema.columns()) {
    schema.AddColumn(col.name, col.type);
  }
  for (const ColumnDef& col : right->output_schema.columns()) {
    schema.AddColumn(col.name, col.type);
  }
  op->output_schema = std::move(schema);
  size_t left_arity = left->output_schema.num_columns();
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  if (condition != nullptr) {
    JoinConditionParts parts = SplitJoinCondition(condition, left_arity);
    op->equi_keys = std::move(parts.equi_keys);
    op->predicate = std::move(parts.residual);
  }
  op->join_algorithm =
      op->equi_keys.empty() ? JoinAlgorithm::kLoop : JoinAlgorithm::kHash;
  return op;
}

LogicalOpPtr LogicalOp::Aggregate(LogicalOpPtr child, std::vector<ExprPtr> keys,
                                  std::vector<AggregateSpec> aggs) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kAggregate;
  Schema schema;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string name = keys[i]->kind == ExprKind::kColumn
                           ? keys[i]->column_name
                           : "key" + std::to_string(i);
    schema.AddColumn(std::move(name),
                     keys[i]->InferType(child->output_schema));
  }
  for (const AggregateSpec& agg : aggs) {
    DataType type = DataType::kDouble;
    if (agg.func == AggFunc::kCount || agg.func == AggFunc::kCountStar) {
      type = DataType::kInt64;
    } else if (agg.arg != nullptr &&
               (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax)) {
      type = agg.arg->InferType(child->output_schema);
    } else if (agg.arg != nullptr && agg.func == AggFunc::kSum &&
               agg.arg->InferType(child->output_schema) == DataType::kInt64) {
      type = DataType::kInt64;
    }
    schema.AddColumn(agg.output_name, type);
  }
  op->output_schema = std::move(schema);
  op->children.push_back(std::move(child));
  op->group_by = std::move(keys);
  op->aggregates = std::move(aggs);
  return op;
}

LogicalOpPtr LogicalOp::Sort(LogicalOpPtr child, std::vector<SortKey> keys) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kSort;
  op->output_schema = child->output_schema;
  op->children.push_back(std::move(child));
  op->sort_keys = std::move(keys);
  return op;
}

LogicalOpPtr LogicalOp::Limit(LogicalOpPtr child, int64_t n) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kLimit;
  op->output_schema = child->output_schema;
  op->children.push_back(std::move(child));
  op->limit = n;
  return op;
}

LogicalOpPtr LogicalOp::UnionAll(std::vector<LogicalOpPtr> children) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kUnionAll;
  if (!children.empty()) op->output_schema = children[0]->output_schema;
  op->children = std::move(children);
  return op;
}

LogicalOpPtr LogicalOp::Udo(LogicalOpPtr child, std::string name,
                            bool deterministic, int dependency_depth,
                            double selectivity, double cost_per_row) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kUdo;
  op->output_schema = child->output_schema;
  op->children.push_back(std::move(child));
  op->udo_name = std::move(name);
  op->udo_deterministic = deterministic;
  op->udo_dependency_depth = dependency_depth;
  op->udo_selectivity = selectivity;
  op->udo_cost_per_row = cost_per_row;
  return op;
}

LogicalOpPtr LogicalOp::Spool(LogicalOpPtr child) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kSpool;
  op->output_schema = child->output_schema;
  op->children.push_back(std::move(child));
  return op;
}

LogicalOpPtr LogicalOp::SharedScan(Hash128 signature, Hash128 recurring,
                                   Schema schema, LogicalOpPtr fallback) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOpKind::kSharedScan;
  op->view_signature = signature;
  op->view_recurring_signature = recurring;
  op->output_schema = std::move(schema);
  op->shared_fallback_plan = std::move(fallback);
  return op;
}

size_t LogicalOp::TreeSize() const {
  size_t n = 1;
  for (const LogicalOpPtr& child : children) n += child->TreeSize();
  return n;
}

std::vector<std::string> LogicalOp::InputDatasets() const {
  std::set<std::string> names;
  // Iterative DFS to avoid building intermediate vectors per node.
  std::vector<const LogicalOp*> stack = {this};
  while (!stack.empty()) {
    const LogicalOp* op = stack.back();
    stack.pop_back();
    if (op->kind == LogicalOpKind::kScan) names.insert(op->dataset_name);
    for (const LogicalOpPtr& child : op->children) {
      stack.push_back(child.get());
    }
  }
  return {names.begin(), names.end()};
}

LogicalOpPtr LogicalOp::Clone() const {
  auto copy = std::make_shared<LogicalOp>(*this);
  copy->children.clear();
  for (const LogicalOpPtr& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + LogicalOpKindName(kind);
  switch (kind) {
    case LogicalOpKind::kScan:
      out += " " + dataset_name + " [guid=" + dataset_guid.substr(0, 8) + "]";
      break;
    case LogicalOpKind::kViewScan:
      out += " sig=" + view_signature.ToHex().substr(0, 12);
      break;
    case LogicalOpKind::kSharedScan:
      out += " sig=" + view_signature.ToHex().substr(0, 12);
      break;
    case LogicalOpKind::kFilter:
      out += " " + predicate->ToString();
      break;
    case LogicalOpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i]->ToString();
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kJoin: {
      out += std::string(" ") + JoinAlgorithmName(join_algorithm);
      out += join_kind == sql::JoinKind::kLeft ? " LEFT" : " INNER";
      for (const auto& [l, r] : equi_keys) {
        out += " $" + std::to_string(l) + "=$" + std::to_string(r);
      }
      if (predicate != nullptr) out += " residual=" + predicate->ToString();
      break;
    }
    case LogicalOpKind::kAggregate: {
      out += " keys=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i]->ToString();
      }
      out += "] aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += AggFuncName(aggregates[i].func);
        if (aggregates[i].arg != nullptr) {
          out += "(" + aggregates[i].arg->ToString() + ")";
        }
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kSort: {
      out += " [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].expr->ToString();
        out += sort_keys[i].ascending ? " ASC" : " DESC";
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kLimit:
      out += " " + std::to_string(limit);
      break;
    case LogicalOpKind::kUdo:
      out += " " + udo_name +
             (udo_deterministic ? "" : " [non-deterministic]");
      break;
    default:
      break;
  }
  if (estimated_rows > 0) {
    out += "  {est_rows=" + std::to_string(static_cast<int64_t>(estimated_rows));
    if (stats_from_view) out += ", from_view";
    out += "}";
  }
  out += "\n";
  for (const LogicalOpPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

namespace {

// Gathers top-level AND conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary &&
      expr->binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(expr->children[0], out);
    CollectConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

}  // namespace

JoinConditionParts SplitJoinCondition(const ExprPtr& condition,
                                      size_t left_arity) {
  JoinConditionParts parts;
  if (condition == nullptr) return parts;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(condition, &conjuncts);
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == sql::BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumn &&
        c->children[1]->kind == ExprKind::kColumn) {
      int a = c->children[0]->column_index;
      int b = c->children[1]->column_index;
      bool a_left = static_cast<size_t>(a) < left_arity;
      bool b_left = static_cast<size_t>(b) < left_arity;
      if (a_left != b_left) {
        int left_idx = a_left ? a : b;
        int right_idx = a_left ? b : a;
        parts.equi_keys.emplace_back(
            left_idx, right_idx - static_cast<int>(left_arity));
        continue;
      }
    }
    residual.push_back(c);
  }
  for (const ExprPtr& r : residual) {
    parts.residual = parts.residual == nullptr
                         ? r
                         : Expr::MakeBinary(sql::BinaryOp::kAnd,
                                            parts.residual, r);
  }
  return parts;
}

}  // namespace cloudviews
