#include "verify/signature_auditor.h"

#include <unordered_map>

#include "storage/value.h"

namespace cloudviews {
namespace verify {

namespace {

// Serializes an expression covering exactly what Expr::HashInto(strict=true)
// hashes: kind, operator enums, literal values with their types, column
// ordinals, function names, negation flags, LIKE patterns, and the child
// list. Deliberately built by string concatenation — no Hasher involved —
// so it cannot share a bug with the hashing path.
void ExprCanonical(const Expr& expr, std::string* out) {
  out->push_back('e');
  out->append(std::to_string(static_cast<int>(expr.kind)));
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->push_back(':');
      out->append(DataTypeName(expr.literal.type()));
      out->push_back('=');
      out->append(expr.literal.ToString());
      break;
    case ExprKind::kColumn:
      out->push_back('$');
      out->append(std::to_string(expr.column_index));
      break;
    case ExprKind::kUnary:
      out->push_back('u');
      out->append(std::to_string(static_cast<int>(expr.unary_op)));
      break;
    case ExprKind::kBinary:
      out->push_back('b');
      out->append(std::to_string(static_cast<int>(expr.binary_op)));
      break;
    case ExprKind::kCall:
      out->push_back('f');
      out->append(expr.function_name);
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      out->push_back(expr.negated ? '!' : '.');
      break;
    case ExprKind::kLike:
      out->push_back(expr.negated ? '!' : '.');
      out->push_back('~');
      out->append(expr.like_pattern);
      break;
  }
  out->push_back('(');
  for (const ExprPtr& child : expr.children) {
    ExprCanonical(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

// Mirrors HashNodeParams(strict=true) in plan/signature.cc, again by
// string building rather than hashing.
void NodeCanonical(const LogicalOp& node, std::string* out) {
  out->append(LogicalOpKindName(node.kind));
  out->push_back('{');
  switch (node.kind) {
    case LogicalOpKind::kScan:
      out->append(node.dataset_name);
      out->push_back('#');
      out->append(node.dataset_guid);
      out->push_back('[');
      for (int col : node.scan_columns) {
        out->append(std::to_string(col));
        out->push_back(',');
      }
      out->push_back(']');
      break;
    case LogicalOpKind::kViewScan:
      out->append(node.view_signature.ToHex());
      break;
    case LogicalOpKind::kSharedScan:
      out->append(node.view_signature.ToHex());
      break;
    case LogicalOpKind::kFilter:
      ExprCanonical(*node.predicate, out);
      break;
    case LogicalOpKind::kProject:
      for (const ExprPtr& e : node.projections) {
        ExprCanonical(*e, out);
        out->push_back(',');
      }
      break;
    case LogicalOpKind::kJoin:
      out->append(std::to_string(static_cast<int>(node.join_kind)));
      out->push_back('[');
      for (const auto& [l, r] : node.equi_keys) {
        out->append(std::to_string(l));
        out->push_back('=');
        out->append(std::to_string(r));
        out->push_back(',');
      }
      out->push_back(']');
      if (node.predicate != nullptr) ExprCanonical(*node.predicate, out);
      break;
    case LogicalOpKind::kAggregate:
      out->push_back('[');
      for (const ExprPtr& e : node.group_by) {
        ExprCanonical(*e, out);
        out->push_back(',');
      }
      out->push_back(';');
      for (const AggregateSpec& agg : node.aggregates) {
        out->append(std::to_string(static_cast<int>(agg.func)));
        out->push_back(agg.distinct ? 'd' : '.');
        if (agg.arg != nullptr) ExprCanonical(*agg.arg, out);
        out->push_back(',');
      }
      out->push_back(']');
      break;
    case LogicalOpKind::kSort:
      for (const SortKey& key : node.sort_keys) {
        ExprCanonical(*key.expr, out);
        out->push_back(key.ascending ? 'a' : 'd');
        out->push_back(',');
      }
      break;
    case LogicalOpKind::kLimit:
      out->append(std::to_string(node.limit));
      break;
    case LogicalOpKind::kUnionAll:
      break;
    case LogicalOpKind::kUdo:
      out->append(node.udo_name);
      out->push_back(node.udo_deterministic ? 'd' : 'n');
      break;
    case LogicalOpKind::kSpool:
      break;
  }
  out->push_back('}');
  out->push_back('(');
  for (const LogicalOpPtr& child : node.children) {
    NodeCanonical(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

bool SubtreeContainsReuseOp(const LogicalOp& node) {
  if (node.kind == LogicalOpKind::kSpool ||
      node.kind == LogicalOpKind::kViewScan ||
      node.kind == LogicalOpKind::kSharedScan) {
    return true;
  }
  for (const LogicalOpPtr& child : node.children) {
    if (SubtreeContainsReuseOp(*child)) return true;
  }
  return false;
}

}  // namespace

std::string CanonicalForm(const LogicalOp& node) {
  std::string out;
  out.reserve(node.TreeSize() * 24);
  NodeCanonical(node, &out);
  return out;
}

Status SignatureAuditor::AuditPlan(const LogicalOp& root) {
  report_.plans_audited += 1;

  // Determinism: computing the same plan's signatures twice must agree bit
  // for bit. (An unseeded hash, iteration-order dependence, or
  // uninitialized field shows up here immediately.)
  std::vector<NodeSignature> first = computer_.ComputeAll(root);
  std::vector<NodeSignature> second = computer_.ComputeAll(root);
  if (first.size() != second.size()) {
    std::string msg = "signature audit: recomputation returned " +
                      std::to_string(second.size()) + " signatures vs " +
                      std::to_string(first.size());
    report_.instabilities.push_back(msg);
    return Status::Corruption(msg);
  }
  for (size_t i = 0; i < first.size(); ++i) {
    if (!(first[i].strict == second[i].strict) ||
        !(first[i].recurring == second[i].recurring)) {
      std::string msg =
          "signature audit: nondeterministic recomputation at " +
          std::string(LogicalOpKindName(first[i].node->kind)) +
          " (strict " + first[i].strict.ToHex() + " vs " +
          second[i].strict.ToHex() + ")";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
  }

  // Cross-check each subtree's strict hash against the accumulated
  // canonical-form maps.
  Status status = Status::OK();
  for (const NodeSignature& sig : first) {
    const LogicalOp& node = *sig.node;
    if (SubtreeContainsReuseOp(node)) continue;  // transparency by design
    report_.nodes_audited += 1;

    std::string canonical = CanonicalForm(node);
    auto by_hash = by_strict_.find(sig.strict);
    if (by_hash != by_strict_.end() &&
        by_hash->second.canonical != canonical) {
      std::string msg = "signature audit: strict hash COLLISION on " +
                        sig.strict.ToHex() + ": '" + canonical +
                        "' vs previously seen '" + by_hash->second.canonical +
                        "'";
      report_.collisions.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    if (by_hash != by_strict_.end() &&
        !(by_hash->second.recurring == sig.recurring)) {
      std::string msg =
          "signature audit: strict signature " + sig.strict.ToHex() +
          " maps to two recurring signatures (" + sig.recurring.ToHex() +
          " vs " + by_hash->second.recurring.ToHex() + ")";
      report_.instabilities.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    auto by_text = by_canonical_.find(canonical);
    if (by_text != by_canonical_.end() && !(by_text->second == sig.strict)) {
      std::string msg = "signature audit: hash INSTABILITY: '" + canonical +
                        "' hashed to " + sig.strict.ToHex() +
                        " but previously to " + by_text->second.ToHex();
      report_.instabilities.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    if (by_strict_.size() < kMaxTrackedEntries) {
      by_strict_.emplace(sig.strict,
                         SeenEntry{canonical, sig.recurring,
                                   sig.subtree_size});
      by_canonical_.emplace(std::move(canonical), sig.strict);
    }
  }
  return status;
}

Status SignatureAuditor::CrossCheckGroups(
    const std::vector<RepositoryGroup>& groups) {
  std::unordered_map<Hash128, Hash128, Hash128Hasher> recurring_seen;
  for (const RepositoryGroup& group : groups) {
    if (group.strict_signature.IsZero()) {
      std::string msg = "repository audit: group with zero strict signature";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    if (group.subtree_size < 1 || group.occurrences < 1 ||
        group.cost_samples > group.occurrences ||
        group.last_day < group.first_day) {
      std::string msg = "repository audit: inconsistent group " +
                        group.strict_signature.ToHex() + " (" +
                        std::to_string(group.occurrences) + " occurrences, " +
                        std::to_string(group.cost_samples) +
                        " cost samples, subtree size " +
                        std::to_string(group.subtree_size) + ")";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    // A strict signature determines the subexpression, hence its recurring
    // signature — within the repository and against audited plans.
    auto [it, inserted] = recurring_seen.emplace(group.strict_signature,
                                                 group.recurring_signature);
    if (!inserted && !(it->second == group.recurring_signature)) {
      std::string msg = "repository audit: strict signature " +
                        group.strict_signature.ToHex() +
                        " has two recurring signatures";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    auto audited = by_strict_.find(group.strict_signature);
    if (audited != by_strict_.end()) {
      if (!(audited->second.recurring == group.recurring_signature)) {
        std::string msg =
            "repository audit: strict signature " +
            group.strict_signature.ToHex() +
            " recurring signature disagrees with the compiled plan's";
        report_.instabilities.push_back(msg);
        return Status::Corruption(msg);
      }
      if (audited->second.subtree_size != group.subtree_size) {
        std::string msg = "repository audit: strict signature " +
                          group.strict_signature.ToHex() +
                          " subtree size " +
                          std::to_string(group.subtree_size) +
                          " disagrees with the compiled plan's " +
                          std::to_string(audited->second.subtree_size);
        report_.instabilities.push_back(msg);
        return Status::Corruption(msg);
      }
    }
  }
  return Status::OK();
}

}  // namespace verify
}  // namespace cloudviews
