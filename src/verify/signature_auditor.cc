#include "verify/signature_auditor.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "plan/containment.h"
#include "storage/value.h"

namespace cloudviews {
namespace verify {

namespace {

// Serializes an expression covering exactly what Expr::HashInto(strict=true)
// hashes: kind, operator enums, literal values with their types, column
// ordinals, function names, negation flags, LIKE patterns, and the child
// list. Deliberately built by string concatenation — no Hasher involved —
// so it cannot share a bug with the hashing path.
void ExprCanonical(const Expr& expr, std::string* out) {
  out->push_back('e');
  out->append(std::to_string(static_cast<int>(expr.kind)));
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->push_back(':');
      out->append(DataTypeName(expr.literal.type()));
      out->push_back('=');
      out->append(expr.literal.ToString());
      break;
    case ExprKind::kColumn:
      out->push_back('$');
      out->append(std::to_string(expr.column_index));
      break;
    case ExprKind::kUnary:
      out->push_back('u');
      out->append(std::to_string(static_cast<int>(expr.unary_op)));
      break;
    case ExprKind::kBinary:
      out->push_back('b');
      out->append(std::to_string(static_cast<int>(expr.binary_op)));
      break;
    case ExprKind::kCall:
      out->push_back('f');
      out->append(expr.function_name);
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      out->push_back(expr.negated ? '!' : '.');
      break;
    case ExprKind::kLike:
      out->push_back(expr.negated ? '!' : '.');
      out->push_back('~');
      out->append(expr.like_pattern);
      break;
  }
  out->push_back('(');
  for (const ExprPtr& child : expr.children) {
    ExprCanonical(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

// Mirrors HashNodeParams(strict=true) in plan/signature.cc, again by
// string building rather than hashing. Node-local parameters only.
void NodeCanonicalParams(const LogicalOp& node, std::string* out) {
  out->append(LogicalOpKindName(node.kind));
  out->push_back('{');
  switch (node.kind) {
    case LogicalOpKind::kScan:
      out->append(node.dataset_name);
      out->push_back('#');
      out->append(node.dataset_guid);
      out->push_back('[');
      for (int col : node.scan_columns) {
        out->append(std::to_string(col));
        out->push_back(',');
      }
      out->push_back(']');
      break;
    case LogicalOpKind::kViewScan:
      out->append(node.view_signature.ToHex());
      break;
    case LogicalOpKind::kSharedScan:
      out->append(node.view_signature.ToHex());
      break;
    case LogicalOpKind::kFilter:
      ExprCanonical(*node.predicate, out);
      break;
    case LogicalOpKind::kProject:
      for (const ExprPtr& e : node.projections) {
        ExprCanonical(*e, out);
        out->push_back(',');
      }
      break;
    case LogicalOpKind::kJoin:
      out->append(std::to_string(static_cast<int>(node.join_kind)));
      out->push_back('[');
      for (const auto& [l, r] : node.equi_keys) {
        out->append(std::to_string(l));
        out->push_back('=');
        out->append(std::to_string(r));
        out->push_back(',');
      }
      out->push_back(']');
      if (node.predicate != nullptr) ExprCanonical(*node.predicate, out);
      break;
    case LogicalOpKind::kAggregate:
      out->push_back('[');
      for (const ExprPtr& e : node.group_by) {
        ExprCanonical(*e, out);
        out->push_back(',');
      }
      out->push_back(';');
      for (const AggregateSpec& agg : node.aggregates) {
        out->append(std::to_string(static_cast<int>(agg.func)));
        out->push_back(agg.distinct ? 'd' : '.');
        if (agg.arg != nullptr) ExprCanonical(*agg.arg, out);
        out->push_back(',');
      }
      out->push_back(']');
      break;
    case LogicalOpKind::kSort:
      for (const SortKey& key : node.sort_keys) {
        ExprCanonical(*key.expr, out);
        out->push_back(key.ascending ? 'a' : 'd');
        out->push_back(',');
      }
      break;
    case LogicalOpKind::kLimit:
      out->append(std::to_string(node.limit));
      break;
    case LogicalOpKind::kUnionAll:
      break;
    case LogicalOpKind::kUdo:
      out->append(node.udo_name);
      out->push_back(node.udo_deterministic ? 'd' : 'n');
      break;
    case LogicalOpKind::kSpool:
      break;
  }
  out->push_back('}');
}

void NodeCanonical(const LogicalOp& node, std::string* out) {
  NodeCanonicalParams(node, out);
  out->push_back('(');
  for (const LogicalOpPtr& child : node.children) {
    NodeCanonical(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

// Serializes the filter-stripped skeleton of a subtree: spools and filters
// contribute nothing, Aggregate/Project only their kind (their parameters
// may legally diverge at the root of a subsumed pair), everything else its
// full strict parameters. Built by string concatenation, independent of
// SignatureComputer::ComputeMatchClass — a skeleton mismatch between a
// query and the view claimed to subsume it means no compensation shape can
// be correct.
void SkeletonCanonical(const LogicalOp& node, std::string* out) {
  if (node.kind == LogicalOpKind::kSpool ||
      node.kind == LogicalOpKind::kFilter) {
    SkeletonCanonical(*node.children[0], out);
    return;
  }
  if (node.kind == LogicalOpKind::kAggregate ||
      node.kind == LogicalOpKind::kProject) {
    out->append(LogicalOpKindName(node.kind));
  } else {
    NodeCanonicalParams(node, out);
  }
  out->push_back('(');
  for (const LogicalOpPtr& child : node.children) {
    SkeletonCanonical(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

// The refutation-only range re-check for subsumption audits. Walks query
// and view in lockstep (their skeletons already matched), reconstructing
// the query-side conjunct set available at each view filter exactly as the
// containment checker's coverage rule defines it; where the
// reconstruction would need machinery this audit does not replicate
// (residuals crossing Project/Aggregate boundaries, outer-join right
// sides), the set is marked incomplete and refutation stands down for the
// levels above. A *complete* set missing a view-constrained column, or
// holding a range not contained in the view's, proves the view discarded
// rows the query keeps — residual filtering cannot resurrect them.
struct AvailableSet {
  std::vector<ColumnRange> ranges;
  bool complete = true;
};

void MergeAvailable(std::vector<ColumnRange>* ranges, ColumnRange range) {
  auto existing = std::find_if(
      ranges->begin(), ranges->end(),
      [&](const ColumnRange& r) { return r.column == range.column; });
  if (existing != ranges->end()) {
    existing->IntersectWith(range);
  } else {
    ranges->push_back(std::move(range));
  }
}

const LogicalOp& PeelSpools(const LogicalOp& op) {
  const LogicalOp* p = &op;
  while (p->kind == LogicalOpKind::kSpool) p = p->children[0].get();
  return *p;
}

void CheckViewConjuncts(const LogicalOp& view_filter,
                        const AvailableSet& available,
                        std::vector<std::string>* findings) {
  if (!available.complete) return;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(view_filter.predicate, &conjuncts);
  for (const ExprPtr& vc : conjuncts) {
    std::optional<ColumnRange> view_range = RangeFromConjunct(vc);
    if (!view_range.has_value()) continue;  // opaque: not refutable here
    auto query_range = std::find_if(
        available.ranges.begin(), available.ranges.end(),
        [&](const ColumnRange& r) { return r.column == view_range->column; });
    if (query_range == available.ranges.end()) {
      findings->push_back(
          "subsumption audit: view filters column " +
          std::to_string(view_range->column) +
          " but the query side carries no range on it");
    } else if (!query_range->ContainedIn(*view_range)) {
      findings->push_back(
          "subsumption audit: query range on column " +
          std::to_string(view_range->column) +
          " is not contained in the view's filter range");
    }
  }
}

AvailableSet CollectAvailable(const LogicalOp& query_in,
                              const LogicalOp& view_in,
                              std::vector<std::string>* findings) {
  const LogicalOp& q = PeelSpools(query_in);
  const LogicalOp& v = PeelSpools(view_in);
  // View filters first: each is checked against the full query-side set of
  // its level, which the query-filter case below finishes collecting before
  // any enclosing view filter's check runs.
  if (v.kind == LogicalOpKind::kFilter) {
    AvailableSet below = CollectAvailable(q, *v.children[0], findings);
    CheckViewConjuncts(v, below, findings);
    return below;
  }
  if (q.kind == LogicalOpKind::kFilter) {
    AvailableSet below = CollectAvailable(*q.children[0], v, findings);
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(q.predicate, &conjuncts);
    for (const ExprPtr& c : conjuncts) {
      std::optional<ColumnRange> range = RangeFromConjunct(c);
      if (range.has_value()) MergeAvailable(&below.ranges, std::move(*range));
    }
    return below;
  }
  if (q.kind != v.kind || q.children.size() != v.children.size()) {
    // The skeleton check already reported this; stop refuting.
    return {{}, false};
  }
  switch (q.kind) {
    case LogicalOpKind::kScan:
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
      return {{}, true};
    case LogicalOpKind::kJoin: {
      AvailableSet left =
          CollectAvailable(*q.children[0], *v.children[0], findings);
      AvailableSet right =
          CollectAvailable(*q.children[1], *v.children[1], findings);
      if (q.join_kind == sql::JoinKind::kInner) {
        const int shift =
            static_cast<int>(v.children[0]->output_schema.num_columns());
        for (ColumnRange& r : right.ranges) {
          r.column += shift;
          MergeAvailable(&left.ranges, std::move(r));
        }
        left.complete = left.complete && right.complete;
        return left;
      }
      // Left join: the right side's constraints do not survive
      // null-extension; dropping them makes the set incomplete unless
      // there was nothing to drop.
      left.complete =
          left.complete && right.complete && right.ranges.empty();
      return left;
    }
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit:
    case LogicalOpKind::kUdo:
      return CollectAvailable(*q.children[0], *v.children[0], findings);
    default: {
      // Project / Aggregate / UnionAll change (or multiplex) the ordinal
      // space; this audit checks below them but does not lift ranges
      // across.
      for (size_t i = 0; i < q.children.size(); ++i) {
        CollectAvailable(*q.children[i], *v.children[i], findings);
      }
      return {{}, false};
    }
  }
}

bool SubtreeContainsReuseOp(const LogicalOp& node) {
  if (node.kind == LogicalOpKind::kSpool ||
      node.kind == LogicalOpKind::kViewScan ||
      node.kind == LogicalOpKind::kSharedScan) {
    return true;
  }
  for (const LogicalOpPtr& child : node.children) {
    if (SubtreeContainsReuseOp(*child)) return true;
  }
  return false;
}

}  // namespace

std::string CanonicalForm(const LogicalOp& node) {
  std::string out;
  out.reserve(node.TreeSize() * 24);
  NodeCanonical(node, &out);
  return out;
}

Status SignatureAuditor::AuditPlan(const LogicalOp& root) {
  report_.plans_audited += 1;

  // Determinism: computing the same plan's signatures twice must agree bit
  // for bit. (An unseeded hash, iteration-order dependence, or
  // uninitialized field shows up here immediately.)
  std::vector<NodeSignature> first = computer_.ComputeAll(root);
  std::vector<NodeSignature> second = computer_.ComputeAll(root);
  if (first.size() != second.size()) {
    std::string msg = "signature audit: recomputation returned " +
                      std::to_string(second.size()) + " signatures vs " +
                      std::to_string(first.size());
    report_.instabilities.push_back(msg);
    return Status::Corruption(msg);
  }
  for (size_t i = 0; i < first.size(); ++i) {
    if (!(first[i].strict == second[i].strict) ||
        !(first[i].recurring == second[i].recurring)) {
      std::string msg =
          "signature audit: nondeterministic recomputation at " +
          std::string(LogicalOpKindName(first[i].node->kind)) +
          " (strict " + first[i].strict.ToHex() + " vs " +
          second[i].strict.ToHex() + ")";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
  }

  // Cross-check each subtree's strict hash against the accumulated
  // canonical-form maps.
  Status status = Status::OK();
  for (const NodeSignature& sig : first) {
    const LogicalOp& node = *sig.node;
    if (SubtreeContainsReuseOp(node)) continue;  // transparency by design
    report_.nodes_audited += 1;

    std::string canonical = CanonicalForm(node);
    auto by_hash = by_strict_.find(sig.strict);
    if (by_hash != by_strict_.end() &&
        by_hash->second.canonical != canonical) {
      std::string msg = "signature audit: strict hash COLLISION on " +
                        sig.strict.ToHex() + ": '" + canonical +
                        "' vs previously seen '" + by_hash->second.canonical +
                        "'";
      report_.collisions.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    if (by_hash != by_strict_.end() &&
        !(by_hash->second.recurring == sig.recurring)) {
      std::string msg =
          "signature audit: strict signature " + sig.strict.ToHex() +
          " maps to two recurring signatures (" + sig.recurring.ToHex() +
          " vs " + by_hash->second.recurring.ToHex() + ")";
      report_.instabilities.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    auto by_text = by_canonical_.find(canonical);
    if (by_text != by_canonical_.end() && !(by_text->second == sig.strict)) {
      std::string msg = "signature audit: hash INSTABILITY: '" + canonical +
                        "' hashed to " + sig.strict.ToHex() +
                        " but previously to " + by_text->second.ToHex();
      report_.instabilities.push_back(msg);
      if (status.ok()) status = Status::Corruption(msg);
      continue;
    }
    if (by_strict_.size() < kMaxTrackedEntries) {
      by_strict_.emplace(sig.strict,
                         SeenEntry{canonical, sig.recurring,
                                   sig.subtree_size});
      by_canonical_.emplace(std::move(canonical), sig.strict);
    }
  }
  return status;
}

Status SignatureAuditor::AuditSubsumption(
    const LogicalOp& query_subtree, const LogicalOp& view_definition,
    const std::vector<ExprPtr>& residual) {
  report_.subsumptions_audited += 1;

  // (1) Structural precondition: identical filter-stripped skeletons.
  std::string query_skeleton;
  std::string view_skeleton;
  SkeletonCanonical(query_subtree, &query_skeleton);
  SkeletonCanonical(view_definition, &view_skeleton);
  if (query_skeleton != view_skeleton) {
    std::string msg =
        "subsumption audit: skeleton mismatch between query '" +
        query_skeleton + "' and claimed view '" + view_skeleton + "'";
    report_.subsumption_failures.push_back(msg);
    return Status::Corruption(msg);
  }

  // (2) The compensation filter must be a conjunction this audit can at
  // least split — a nullptr conjunct would crash execution later.
  for (const ExprPtr& conjunct : residual) {
    if (conjunct == nullptr) {
      std::string msg = "subsumption audit: null residual conjunct";
      report_.subsumption_failures.push_back(msg);
      return Status::Corruption(msg);
    }
  }

  // (3) Refutation-only range re-check.
  std::vector<std::string> findings;
  CollectAvailable(query_subtree, view_definition, &findings);
  if (!findings.empty()) {
    for (const std::string& finding : findings) {
      report_.subsumption_failures.push_back(finding);
    }
    return Status::Corruption(findings.front());
  }
  return Status::OK();
}

Status SignatureAuditor::CrossCheckGroups(
    const std::vector<RepositoryGroup>& groups) {
  std::unordered_map<Hash128, Hash128, Hash128Hasher> recurring_seen;
  for (const RepositoryGroup& group : groups) {
    if (group.strict_signature.IsZero()) {
      std::string msg = "repository audit: group with zero strict signature";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    if (group.subtree_size < 1 || group.occurrences < 1 ||
        group.cost_samples > group.occurrences ||
        group.last_day < group.first_day) {
      std::string msg = "repository audit: inconsistent group " +
                        group.strict_signature.ToHex() + " (" +
                        std::to_string(group.occurrences) + " occurrences, " +
                        std::to_string(group.cost_samples) +
                        " cost samples, subtree size " +
                        std::to_string(group.subtree_size) + ")";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    // A strict signature determines the subexpression, hence its recurring
    // signature — within the repository and against audited plans.
    auto [it, inserted] = recurring_seen.emplace(group.strict_signature,
                                                 group.recurring_signature);
    if (!inserted && !(it->second == group.recurring_signature)) {
      std::string msg = "repository audit: strict signature " +
                        group.strict_signature.ToHex() +
                        " has two recurring signatures";
      report_.instabilities.push_back(msg);
      return Status::Corruption(msg);
    }
    auto audited = by_strict_.find(group.strict_signature);
    if (audited != by_strict_.end()) {
      if (!(audited->second.recurring == group.recurring_signature)) {
        std::string msg =
            "repository audit: strict signature " +
            group.strict_signature.ToHex() +
            " recurring signature disagrees with the compiled plan's";
        report_.instabilities.push_back(msg);
        return Status::Corruption(msg);
      }
      if (audited->second.subtree_size != group.subtree_size) {
        std::string msg = "repository audit: strict signature " +
                          group.strict_signature.ToHex() +
                          " subtree size " +
                          std::to_string(group.subtree_size) +
                          " disagrees with the compiled plan's " +
                          std::to_string(audited->second.subtree_size);
        report_.instabilities.push_back(msg);
        return Status::Corruption(msg);
      }
    }
  }
  return Status::OK();
}

}  // namespace verify
}  // namespace cloudviews
