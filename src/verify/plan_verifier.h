#ifndef CLOUDVIEWS_VERIFY_PLAN_VERIFIER_H_
#define CLOUDVIEWS_VERIFY_PLAN_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "plan/signature.h"
#include "storage/catalog.h"

namespace cloudviews {
namespace verify {

// What the PlanVerifier checks. The defaults hold for every plan the engine
// ever holds — straight out of the builder, after normalization, and after
// every optimizer rewrite. The opt-in flags add invariants that only
// normalized or optimizer-produced plans must satisfy.
struct PlanVerifyOptions {
  // When set, scan leaves are resolved against the catalog: the dataset must
  // exist and the scan's output schema must be the dataset schema (or, for
  // pruned scans, the selected column subset of it).
  const DatasetCatalog* catalog = nullptr;

  // When set, every spool's view_signature must equal the recomputed strict
  // signature of its child — a forged or stale signature (e.g. the plan
  // mutated after spool injection) is rejected. The computer must use the
  // same SignatureOptions the optimizer used.
  const SignatureComputer* signatures = nullptr;

  // Require spool/view-scan signatures to be non-zero. On for optimizer
  // output (the rules always stamp signatures); off for hand-built plans in
  // tests and benches that exercise bare spools.
  bool require_reuse_signatures = false;

  // After CostModel::ChooseJoinAlgorithms has run, every non-loop join must
  // carry at least one equi key (keyless joins fall back to loop). Off for
  // builder output, where the default algorithm is a placeholder.
  bool algorithms_chosen = false;

  // Invariants PlanNormalizer establishes: no filter-over-filter cascades,
  // and top-level AND conjuncts in canonical (ascending strict-hash) order,
  // so commutative predicate children have a deterministic order and equal
  // subexpressions cannot hash apart.
  bool expect_normalized = false;
};

// Validates a logical plan bottom to top: DAG acyclicity, per-kind child
// arity, column-reference resolution against child schemas, output-schema
// contracts (filter/sort/limit/UDO/spool preserve, project matches its
// expression list, join concatenates, aggregate is keys-then-aggregates,
// union branches agree), expression type consistency, and reuse-operator
// signature integrity. Every failure is a Status::Corruption whose message
// names the offending operator and its path from the root.
class PlanVerifier {
 public:
  explicit PlanVerifier(PlanVerifyOptions options = {}) : options_(options) {}

  Status Verify(const LogicalOp& root) const;

  // Verify() with rule context prepended to any failure, so a violation
  // introduced by an optimizer rewrite names the rule that fired.
  Status VerifyAfterRule(const char* rule, const LogicalOp& root) const;

  const PlanVerifyOptions& options() const { return options_; }

 private:
  Status VerifyNode(const LogicalOp& node, const std::string& path,
                    std::vector<const LogicalOp*>* stack) const;
  Status VerifySchemaContract(const LogicalOp& node,
                              const std::string& where) const;
  Status VerifyExpressions(const LogicalOp& node,
                           const std::string& where) const;

  PlanVerifyOptions options_;
};

}  // namespace verify
}  // namespace cloudviews

#endif  // CLOUDVIEWS_VERIFY_PLAN_VERIFIER_H_
