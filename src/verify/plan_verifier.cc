#include "verify/plan_verifier.h"

#include <algorithm>

#include "verify/verify.h"

namespace cloudviews {
namespace verify {

namespace {

Status Corrupt(const LogicalOp& node, const std::string& path,
               const std::string& detail) {
  return Status::Corruption(NodePath(LogicalOpKindName(node.kind), path) +
                            ": " + detail);
}

// Wildcard-aware type equality: kNull means "unknown/any" (semi-structured
// extraction semantics), so it is compatible with everything.
bool TypesCompatible(DataType a, DataType b) {
  return a == b || a == DataType::kNull || b == DataType::kNull;
}

bool NumericOrNull(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kNull;
}

// Checks that every column ordinal in `expr` is within [0, arity) and that
// the expression tree itself is structurally sound (operands present).
Status CheckExprResolves(const Expr& expr, size_t arity,
                         const std::string& context) {
  if (expr.kind == ExprKind::kColumn) {
    if (expr.column_index < 0 ||
        static_cast<size_t>(expr.column_index) >= arity) {
      return Status::Corruption(
          context + ": dangling column reference $" +
          std::to_string(expr.column_index) +
          (expr.column_name.empty() ? "" : " (" + expr.column_name + ")") +
          " against child arity " + std::to_string(arity));
    }
  }
  for (const ExprPtr& child : expr.children) {
    if (child == nullptr) {
      return Status::Corruption(context + ": expression has a null operand");
    }
    CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*child, arity, context));
  }
  return Status::OK();
}

// The input schema a node's expressions are evaluated against: the single
// child's output, or for joins the concatenation of both children.
Schema ExprInputSchema(const LogicalOp& node) {
  if (node.kind == LogicalOpKind::kJoin) {
    Schema combined;
    for (const ColumnDef& col : node.children[0]->output_schema.columns()) {
      combined.AddColumn(col.name, col.type);
    }
    for (const ColumnDef& col : node.children[1]->output_schema.columns()) {
      combined.AddColumn(col.name, col.type);
    }
    return combined;
  }
  return node.children.empty() ? Schema() : node.children[0]->output_schema;
}

// Expected child count per operator kind; -1 means "one or more".
int ExpectedChildren(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
    case LogicalOpKind::kViewScan:
    case LogicalOpKind::kSharedScan:
      return 0;
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kProject:
    case LogicalOpKind::kAggregate:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit:
    case LogicalOpKind::kUdo:
    case LogicalOpKind::kSpool:
      return 1;
    case LogicalOpKind::kJoin:
      return 2;
    case LogicalOpKind::kUnionAll:
      return -1;
  }
  return -1;
}

}  // namespace

Status PlanVerifier::Verify(const LogicalOp& root) const {
  std::vector<const LogicalOp*> stack;
  return VerifyNode(root, "", &stack);
}

Status PlanVerifier::VerifyAfterRule(const char* rule,
                                     const LogicalOp& root) const {
  Status status = Verify(root);
  if (status.ok()) return status;
  return Status::Corruption("after optimizer rule '" + std::string(rule) +
                            "': " + status.message());
}

Status PlanVerifier::VerifyNode(const LogicalOp& node, const std::string& path,
                                std::vector<const LogicalOp*>* stack) const {
  // Acyclicity: a node reappearing on the current DFS stack closes a cycle.
  // (Sharing a subtree across branches is legal — plans are DAGs — so only
  // on-stack revisits are violations.)
  if (std::find(stack->begin(), stack->end(), &node) != stack->end()) {
    return Corrupt(node, path, "cycle: operator is its own ancestor");
  }

  const int expected = ExpectedChildren(node.kind);
  if (expected >= 0 &&
      node.children.size() != static_cast<size_t>(expected)) {
    return Corrupt(node, path,
                   "expects " + std::to_string(expected) + " children, has " +
                       std::to_string(node.children.size()));
  }
  if (expected < 0 && node.children.empty()) {
    return Corrupt(node, path, "expects at least one child, has none");
  }
  for (const LogicalOpPtr& child : node.children) {
    if (child == nullptr) return Corrupt(node, path, "null child");
  }

  stack->push_back(&node);
  for (size_t i = 0; i < node.children.size(); ++i) {
    std::string child_path =
        path.empty() ? std::to_string(i) : path + "." + std::to_string(i);
    CLOUDVIEWS_RETURN_NOT_OK(VerifyNode(*node.children[i], child_path, stack));
  }
  stack->pop_back();

  const std::string where = NodePath(LogicalOpKindName(node.kind), path);
  CLOUDVIEWS_RETURN_NOT_OK(VerifyExpressions(node, where));
  CLOUDVIEWS_RETURN_NOT_OK(VerifySchemaContract(node, where));
  return Status::OK();
}

Status PlanVerifier::VerifyExpressions(const LogicalOp& node,
                                       const std::string& where) const {
  const Schema input = ExprInputSchema(node);
  const size_t arity = input.num_columns();
  switch (node.kind) {
    case LogicalOpKind::kFilter: {
      if (node.predicate == nullptr) {
        return Status::Corruption(where + ": filter has no predicate");
      }
      CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*node.predicate, arity,
                                                 where));
      DataType type = node.predicate->InferType(input);
      if (type != DataType::kBool && type != DataType::kNull) {
        return Status::Corruption(where + ": predicate is not boolean (" +
                                  std::string(DataTypeName(type)) + ")");
      }
      if (options_.expect_normalized) {
        // Normalized plans have merged filter cascades and canonical
        // (ascending strict-hash) conjunct order — the deterministic child
        // ordering for the commutative AND.
        if (node.children[0]->kind == LogicalOpKind::kFilter) {
          return Status::Corruption(
              where + ": filter cascade survived normalization");
        }
        const Expr* cursor = node.predicate.get();
        std::vector<const Expr*> conjuncts;
        while (cursor->kind == ExprKind::kBinary &&
               cursor->binary_op == sql::BinaryOp::kAnd) {
          conjuncts.push_back(cursor->children[1].get());
          cursor = cursor->children[0].get();
        }
        conjuncts.push_back(cursor);
        // AndAll left-folds, so walking the left spine yields conjuncts in
        // reverse canonical order.
        for (size_t i = 1; i < conjuncts.size(); ++i) {
          Hasher ha, hb;
          conjuncts[i]->HashInto(&ha, /*include_literals=*/true);
          conjuncts[i - 1]->HashInto(&hb, /*include_literals=*/true);
          if (hb.Finish() < ha.Finish()) {
            return Status::Corruption(
                where + ": conjuncts out of canonical hash order");
          }
        }
      }
      break;
    }
    case LogicalOpKind::kProject: {
      for (const ExprPtr& expr : node.projections) {
        if (expr == nullptr) {
          return Status::Corruption(where + ": null projection expression");
        }
        CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*expr, arity, where));
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      const size_t left_arity =
          node.children[0]->output_schema.num_columns();
      const size_t right_arity =
          node.children[1]->output_schema.num_columns();
      for (const auto& [l, r] : node.equi_keys) {
        if (l < 0 || static_cast<size_t>(l) >= left_arity) {
          return Status::Corruption(where + ": equi-key left ordinal $" +
                                    std::to_string(l) + " out of range (" +
                                    std::to_string(left_arity) + " columns)");
        }
        if (r < 0 || static_cast<size_t>(r) >= right_arity) {
          return Status::Corruption(where + ": equi-key right ordinal $" +
                                    std::to_string(r) + " out of range (" +
                                    std::to_string(right_arity) +
                                    " columns)");
        }
        DataType lt =
            node.children[0]->output_schema.column(static_cast<size_t>(l))
                .type;
        DataType rt =
            node.children[1]->output_schema.column(static_cast<size_t>(r))
                .type;
        // Cross-type numeric keys are legal (hash and compare agree); any
        // other mismatch can never match and marks a miswired rewrite.
        if (!TypesCompatible(lt, rt) &&
            !(NumericOrNull(lt) && NumericOrNull(rt))) {
          return Status::Corruption(
              where + ": equi-key type mismatch $" + std::to_string(l) + ":" +
              DataTypeName(lt) + " vs $" + std::to_string(r) + ":" +
              DataTypeName(rt));
        }
      }
      if (node.predicate != nullptr) {
        CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*node.predicate, arity,
                                                   where));
      }
      if (options_.algorithms_chosen &&
          node.join_algorithm != JoinAlgorithm::kLoop &&
          node.equi_keys.empty()) {
        return Status::Corruption(
            where + ": " +
            std::string(JoinAlgorithmName(node.join_algorithm)) +
            " join requires at least one equi key");
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      for (const ExprPtr& key : node.group_by) {
        if (key == nullptr) {
          return Status::Corruption(where + ": null group-by key");
        }
        CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*key, arity, where));
      }
      for (const AggregateSpec& agg : node.aggregates) {
        if (agg.func != AggFunc::kCountStar && agg.arg == nullptr) {
          return Status::Corruption(where + ": " +
                                    std::string(AggFuncName(agg.func)) +
                                    " aggregate has no argument");
        }
        if (agg.arg != nullptr) {
          CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*agg.arg, arity, where));
        }
      }
      break;
    }
    case LogicalOpKind::kSort: {
      for (const SortKey& key : node.sort_keys) {
        if (key.expr == nullptr) {
          return Status::Corruption(where + ": null sort key");
        }
        CLOUDVIEWS_RETURN_NOT_OK(CheckExprResolves(*key.expr, arity, where));
      }
      break;
    }
    case LogicalOpKind::kLimit: {
      if (node.limit < 0) {
        return Status::Corruption(where + ": negative limit " +
                                  std::to_string(node.limit));
      }
      break;
    }
    case LogicalOpKind::kUdo: {
      if (node.udo_name.empty()) {
        return Status::Corruption(where + ": UDO has no name");
      }
      if (node.udo_selectivity < 0.0 || node.udo_selectivity > 1.0) {
        return Status::Corruption(where + ": UDO selectivity " +
                                  std::to_string(node.udo_selectivity) +
                                  " outside [0, 1]");
      }
      if (node.udo_dependency_depth < 0 || node.udo_cost_per_row < 0.0) {
        return Status::Corruption(where +
                                  ": negative UDO dependency depth or cost");
      }
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

Status PlanVerifier::VerifySchemaContract(const LogicalOp& node,
                                          const std::string& where) const {
  switch (node.kind) {
    case LogicalOpKind::kScan: {
      if (!node.scan_columns.empty()) {
        if (node.scan_columns.size() != node.output_schema.num_columns()) {
          return Status::Corruption(
              where + ": pruned scan selects " +
              std::to_string(node.scan_columns.size()) +
              " columns but outputs " +
              std::to_string(node.output_schema.num_columns()));
        }
        for (size_t i = 1; i < node.scan_columns.size(); ++i) {
          if (node.scan_columns[i] <= node.scan_columns[i - 1]) {
            return Status::Corruption(
                where + ": scan_columns not strictly ascending");
          }
        }
        if (node.scan_columns.front() < 0) {
          return Status::Corruption(where + ": negative scan column ordinal");
        }
      }
      if (options_.catalog != nullptr) {
        auto dataset = options_.catalog->Lookup(node.dataset_name);
        if (!dataset.ok()) {
          return Status::Corruption(where + ": scans unknown dataset '" +
                                    node.dataset_name + "'");
        }
        const Schema& base = dataset->table->schema();
        if (node.scan_columns.empty()) {
          if (!(node.output_schema == base)) {
            return Status::Corruption(
                where + ": scan schema " + node.output_schema.ToString() +
                " does not match dataset schema " + base.ToString());
          }
        } else {
          for (size_t i = 0; i < node.scan_columns.size(); ++i) {
            int col = node.scan_columns[i];
            if (static_cast<size_t>(col) >= base.num_columns()) {
              return Status::Corruption(
                  where + ": scan column ordinal " + std::to_string(col) +
                  " out of range for dataset '" + node.dataset_name + "'");
            }
            if (!(node.output_schema.column(i) ==
                  base.column(static_cast<size_t>(col)))) {
              return Status::Corruption(
                  where + ": pruned scan column " + std::to_string(i) +
                  " does not match dataset column " + std::to_string(col));
            }
          }
        }
      }
      break;
    }
    case LogicalOpKind::kViewScan: {
      if (options_.require_reuse_signatures && node.view_signature.IsZero()) {
        return Status::Corruption(where + ": view scan with zero signature");
      }
      break;
    }
    case LogicalOpKind::kSharedScan: {
      if (options_.require_reuse_signatures && node.view_signature.IsZero()) {
        return Status::Corruption(where + ": shared scan with zero signature");
      }
      // Detach is the safety net: a subscriber without a fallback plan (or
      // with one of a different shape) could not answer the query alone.
      if (node.shared_fallback_plan == nullptr) {
        return Status::Corruption(where + ": shared scan without a fallback");
      }
      if (!(node.shared_fallback_plan->output_schema == node.output_schema)) {
        return Status::Corruption(
            where + ": fallback schema " +
            node.shared_fallback_plan->output_schema.ToString() +
            " does not match shared scan schema " +
            node.output_schema.ToString());
      }
      break;
    }
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit:
    case LogicalOpKind::kUdo: {
      // Row-preserving operators pass their child's schema through intact.
      if (!(node.output_schema == node.children[0]->output_schema)) {
        return Status::Corruption(
            where + ": output schema " + node.output_schema.ToString() +
            " does not preserve child schema " +
            node.children[0]->output_schema.ToString());
      }
      break;
    }
    case LogicalOpKind::kSpool: {
      if (!(node.output_schema == node.children[0]->output_schema)) {
        return Status::Corruption(
            where + ": spool must be schema-transparent, got " +
            node.output_schema.ToString() + " over " +
            node.children[0]->output_schema.ToString());
      }
      if (options_.require_reuse_signatures && node.view_signature.IsZero()) {
        return Status::Corruption(where + ": spool with zero view signature");
      }
      if (options_.signatures != nullptr && !node.view_signature.IsZero()) {
        // Exactly-once sealing keys the view store on this signature; a
        // forged or stale one would seal the wrong (or no) view.
        NodeSignature child_sig =
            options_.signatures->Compute(*node.children[0]);
        if (!(child_sig.strict == node.view_signature)) {
          return Status::Corruption(
              where + ": spool signature " + node.view_signature.ToHex() +
              " does not match its child's strict signature " +
              child_sig.strict.ToHex() + " (forged or stale)");
        }
      }
      break;
    }
    case LogicalOpKind::kProject: {
      if (node.projections.size() != node.output_schema.num_columns()) {
        return Status::Corruption(
            where + ": " + std::to_string(node.projections.size()) +
            " projections but " +
            std::to_string(node.output_schema.num_columns()) +
            " output columns");
      }
      const Schema& input = node.children[0]->output_schema;
      for (size_t i = 0; i < node.projections.size(); ++i) {
        DataType inferred = node.projections[i]->InferType(input);
        if (!TypesCompatible(inferred, node.output_schema.column(i).type)) {
          return Status::Corruption(
              where + ": projection " + std::to_string(i) + " infers " +
              DataTypeName(inferred) + " but schema declares " +
              DataTypeName(node.output_schema.column(i).type));
        }
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      const Schema& left = node.children[0]->output_schema;
      const Schema& right = node.children[1]->output_schema;
      if (node.output_schema.num_columns() !=
          left.num_columns() + right.num_columns()) {
        return Status::Corruption(
            where + ": join output arity " +
            std::to_string(node.output_schema.num_columns()) +
            " != left " + std::to_string(left.num_columns()) + " + right " +
            std::to_string(right.num_columns()));
      }
      for (size_t i = 0; i < left.num_columns(); ++i) {
        if (!TypesCompatible(node.output_schema.column(i).type,
                             left.column(i).type)) {
          return Status::Corruption(where + ": join output column " +
                                    std::to_string(i) +
                                    " type differs from left child");
        }
      }
      for (size_t i = 0; i < right.num_columns(); ++i) {
        if (!TypesCompatible(
                node.output_schema.column(left.num_columns() + i).type,
                right.column(i).type)) {
          return Status::Corruption(where + ": join output column " +
                                    std::to_string(left.num_columns() + i) +
                                    " type differs from right child");
        }
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      const size_t expected =
          node.group_by.size() + node.aggregates.size();
      if (node.output_schema.num_columns() != expected) {
        return Status::Corruption(
            where + ": aggregate output arity " +
            std::to_string(node.output_schema.num_columns()) +
            " != keys " + std::to_string(node.group_by.size()) +
            " + aggregates " + std::to_string(node.aggregates.size()));
      }
      break;
    }
    case LogicalOpKind::kUnionAll: {
      const size_t arity = node.output_schema.num_columns();
      for (size_t b = 0; b < node.children.size(); ++b) {
        const Schema& branch = node.children[b]->output_schema;
        if (branch.num_columns() != arity) {
          return Status::Corruption(
              where + ": union branch " + std::to_string(b) + " arity " +
              std::to_string(branch.num_columns()) + " != output arity " +
              std::to_string(arity));
        }
        for (size_t i = 0; i < arity; ++i) {
          if (!TypesCompatible(branch.column(i).type,
                               node.output_schema.column(i).type)) {
            return Status::Corruption(
                where + ": union branch " + std::to_string(b) + " column " +
                std::to_string(i) + " type " +
                DataTypeName(branch.column(i).type) +
                " incompatible with output " +
                DataTypeName(node.output_schema.column(i).type));
          }
        }
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace verify
}  // namespace cloudviews
