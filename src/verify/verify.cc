#include "verify/verify.h"

namespace cloudviews {
namespace verify {

std::string NodePath(const std::string& kind_name, const std::string& path) {
  return kind_name + " at plan path " + (path.empty() ? "root" : path);
}

}  // namespace verify
}  // namespace cloudviews
