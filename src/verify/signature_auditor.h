#ifndef CLOUDVIEWS_VERIFY_SIGNATURE_AUDITOR_H_
#define CLOUDVIEWS_VERIFY_SIGNATURE_AUDITOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "plan/logical_plan.h"
#include "plan/signature.h"

namespace cloudviews {
namespace verify {

// Canonical textual form of a subexpression: an independent second
// canonicalization path that serializes exactly the attributes the strict
// signature hashes (operator kinds, expression trees with literal values,
// dataset names/GUIDs, join kinds, key ordinals) — but through string
// concatenation instead of the Hasher. Two subtrees share a canonical form
// iff the strict hasher consumed identical input, so:
//
//   equal strict hash, different canonical form  =>  hash COLLISION
//   equal canonical form, different strict hash  =>  hash INSTABILITY
//
// Either one silently corrupts every downstream reuse decision (a collision
// serves the wrong view's rows; an instability loses every reuse hit).
std::string CanonicalForm(const LogicalOp& node);

// One repository aggregate, flattened to exactly the fields the audit
// consumes. The verifier sits below core in the module DAG, so the workload
// repository hands its groups over as plain values (see
// WorkloadRepository::AuditGroups) instead of being included here.
struct RepositoryGroup {
  Hash128 strict_signature;
  Hash128 recurring_signature;
  size_t subtree_size = 0;
  int64_t occurrences = 0;
  int64_t cost_samples = 0;
  int first_day = 0;
  int last_day = 0;
};

// Findings accumulated across every plan an auditor has seen.
struct AuditReport {
  size_t nodes_audited = 0;
  size_t plans_audited = 0;
  size_t subsumptions_audited = 0;
  std::vector<std::string> collisions;
  std::vector<std::string> instabilities;
  // Subsumption hits whose independent re-verification failed: the claimed
  // view/query pair differ in their filter-stripped skeletons, or the view
  // provably excludes rows the query keeps.
  std::vector<std::string> subsumption_failures;

  bool ok() const {
    return collisions.empty() && instabilities.empty() &&
           subsumption_failures.empty();
  }
};

// Cross-checks signature integrity over compiled plans and the workload
// repository. Maintains hash<->canonical-form maps across calls, so a
// collision between two *different* jobs' subexpressions is caught when the
// second one compiles.
//
// Subtrees containing reuse-infrastructure operators (spool / view scan)
// are skipped on purpose: signature transparency means a view scan and the
// subtree it replaced hash identically while serializing differently —
// that is the design, not a collision.
class SignatureAuditor {
 public:
  explicit SignatureAuditor(SignatureOptions options = {})
      : computer_(options) {}

  // Audits one compiled plan: recomputes every node's signature twice
  // (determinism), then cross-checks each reuse-eligible subtree's strict
  // hash against the canonical-form maps. Returns Corruption describing the
  // first finding; all findings are retained in report().
  Status AuditPlan(const LogicalOp& root);

  // Cross-checks repository aggregates: every strict signature must pair
  // with a single recurring signature / subtree size, both here and against
  // every plan audited so far.
  Status CrossCheckGroups(const std::vector<RepositoryGroup>& groups);

  // Independently re-verifies one generalized (subsumption) view-match from
  // this auditor's own serialization path, without consulting the
  // containment checker that produced the hit: (1) the query subtree and
  // view definition must share their filter-stripped canonical skeleton
  // (the structural precondition of every compensation shape); (2) a
  // refutation-only re-check of root-liftable predicate ranges — a view
  // range provably narrower than the query's on some column means the view
  // discarded rows the query needs, residual filtering cannot resurrect
  // them, and the hit is corrupt. `residual` is the compensation filter the
  // optimizer spliced (view-output ordinals).
  Status AuditSubsumption(const LogicalOp& query_subtree,
                          const LogicalOp& view_definition,
                          const std::vector<ExprPtr>& residual);

  const AuditReport& report() const { return report_; }

 private:
  // Bounds the cross-plan maps; beyond this, new entries are not retained
  // (within-plan auditing still runs in full).
  static constexpr size_t kMaxTrackedEntries = 1 << 16;

  struct SeenEntry {
    std::string canonical;
    Hash128 recurring;
    size_t subtree_size = 0;
  };

  SignatureComputer computer_;
  std::unordered_map<Hash128, SeenEntry, Hash128Hasher> by_strict_;
  std::unordered_map<std::string, Hash128> by_canonical_;
  AuditReport report_;
};

}  // namespace verify
}  // namespace cloudviews

#endif  // CLOUDVIEWS_VERIFY_SIGNATURE_AUDITOR_H_
