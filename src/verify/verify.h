#ifndef CLOUDVIEWS_VERIFY_VERIFY_H_
#define CLOUDVIEWS_VERIFY_VERIFY_H_

#include <string>

namespace cloudviews {
namespace verify {

// The verify subsystem mechanically checks engine invariants that the rest
// of the code takes for granted: plan well-formedness (plan_verifier.h),
// physical operator wiring (physical_verifier.h), and signature
// determinism/collision-freedom (signature_auditor.h).
//
// The verifier *library* is always compiled, so tests can exercise it in any
// build type. What the CLOUDVIEWS_VERIFY_RUNTIME macro gates is the
// automatic invocation inside the optimizer, executor, and reuse engine:
// Debug/RelWithDebInfo/CI builds re-validate every plan after every rule
// firing, while Release builds compile those call sites down to nothing so
// benchmark throughput is unaffected.
constexpr bool RuntimeChecksEnabled() {
#ifdef CLOUDVIEWS_VERIFY_RUNTIME
  return true;
#else
  return false;
#endif
}

// Formats a node's position for diagnostics: "Join at plan path root.0.1"
// means root's first child's second child. Every verifier error message
// names the offending operator this way, so a violation points at the node
// (and, in the optimizer, the rule) that introduced it.
std::string NodePath(const std::string& kind_name, const std::string& path);

}  // namespace verify
}  // namespace cloudviews

#endif  // CLOUDVIEWS_VERIFY_VERIFY_H_
