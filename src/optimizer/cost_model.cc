#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/exec_stats.h"

namespace cloudviews {

double CostModel::NodeCost(const LogicalOp& node) const {
  double rows = std::max(1.0, node.estimated_rows);
  double bytes = std::max(1.0, node.estimated_bytes);
  switch (node.kind) {
    case LogicalOpKind::kScan:
      return rows * CostWeights::kScanRow + bytes * CostWeights::kScanByte;
    case LogicalOpKind::kViewScan:
      return rows * CostWeights::kScanRow +
             bytes * CostWeights::kViewScanByte;
    case LogicalOpKind::kSharedScan:
      // Consuming forwarded batches costs like reading a materialized view:
      // the producer's compute is attributed to the producer pipeline.
      return rows * CostWeights::kScanRow +
             bytes * CostWeights::kViewScanByte;
    case LogicalOpKind::kFilter:
      return std::max(1.0, node.children[0]->estimated_rows) *
             CostWeights::kFilterRow;
    case LogicalOpKind::kProject:
      return std::max(1.0, node.children[0]->estimated_rows) *
             CostWeights::kProjectRow;
    case LogicalOpKind::kJoin: {
      double left = std::max(1.0, node.children[0]->estimated_rows);
      double right = std::max(1.0, node.children[1]->estimated_rows);
      switch (node.join_algorithm) {
        case JoinAlgorithm::kHash:
          return right * CostWeights::kHashBuildRow +
                 left * CostWeights::kHashProbeRow;
        case JoinAlgorithm::kMerge:
          return CostWeights::kSortRowLog *
                     (left * std::log2(left + 2.0) +
                      right * std::log2(right + 2.0)) +
                 (left + right) * CostWeights::kMergeRow;
        case JoinAlgorithm::kLoop:
          return left * right * CostWeights::kLoopJoinPair;
      }
      return left * right;
    }
    case LogicalOpKind::kAggregate:
      return std::max(1.0, node.children[0]->estimated_rows) *
             CostWeights::kAggRow;
    case LogicalOpKind::kSort: {
      double n = std::max(1.0, node.children[0]->estimated_rows);
      return CostWeights::kSortRowLog * n * std::log2(n + 2.0);
    }
    case LogicalOpKind::kLimit:
      return 1.0;
    case LogicalOpKind::kUnionAll:
      return rows * 0.1;
    case LogicalOpKind::kUdo:
      return std::max(1.0, node.children[0]->estimated_rows) *
             node.udo_cost_per_row;
    case LogicalOpKind::kSpool:
      return rows * CostWeights::kSpoolRow + bytes * CostWeights::kSpoolByte;
  }
  return rows;
}

double CostModel::SubtreeCost(const LogicalOp& node) const {
  double total = NodeCost(node);
  for (const LogicalOpPtr& child : node.children) {
    total += SubtreeCost(*child);
  }
  return total;
}

namespace {

// Total estimated rows entering the subtree at its scan leaves; the morsel
// count (and thus scheduling overhead) scales with this, not with
// intermediate cardinalities.
double LeafRows(const LogicalOp& node) {
  if (node.kind == LogicalOpKind::kScan ||
      node.kind == LogicalOpKind::kViewScan ||
      node.kind == LogicalOpKind::kSharedScan) {
    return std::max(0.0, node.estimated_rows);
  }
  double total = 0.0;
  for (const LogicalOpPtr& child : node.children) {
    total += LeafRows(*child);
  }
  return total;
}

}  // namespace

double CostModel::SubtreeLatencyCost(const LogicalOp& node) const {
  double work = SubtreeCost(node);
  int dop = std::max(1, options_.dop);
  if (dop == 1) return work;
  double fraction = std::clamp(options_.parallel_fraction, 0.0, 1.0);
  double serial_part = work * (1.0 - fraction);
  double parallel_part = work * fraction / static_cast<double>(dop);
  double morsels =
      std::ceil(LeafRows(node) / std::max(1.0, options_.morsel_rows));
  double scheduling =
      morsels * options_.morsel_overhead / static_cast<double>(dop);
  return serial_part + parallel_part + scheduling;
}

double CostModel::ViewScanCost(double observed_rows,
                               double observed_bytes) const {
  return std::max(1.0, observed_rows) * CostWeights::kScanRow +
         std::max(1.0, observed_bytes) * CostWeights::kViewScanByte;
}

void CostModel::ChooseJoinAlgorithms(LogicalOp* node) const {
  for (const LogicalOpPtr& child : node->children) {
    ChooseJoinAlgorithms(child.get());
  }
  if (node->kind != LogicalOpKind::kJoin) return;
  if (node->equi_keys.empty()) {
    node->join_algorithm = JoinAlgorithm::kLoop;
    return;
  }
  // Cost-based choice using the same formulas as NodeCost.
  double left = std::max(1.0, node->children[0]->estimated_rows);
  double right = std::max(1.0, node->children[1]->estimated_rows);
  double loop_cost = left * right * CostWeights::kLoopJoinPair;
  double hash_cost = right * CostWeights::kHashBuildRow +
                     left * CostWeights::kHashProbeRow;
  // A bounded hash-table memory budget per container disqualifies hash
  // joins with huge build sides (they spill; merge wins).
  if (right > options_.hash_build_limit) {
    hash_cost = std::numeric_limits<double>::infinity();
  }
  double merge_cost = CostWeights::kSortRowLog *
                          (left * std::log2(left + 2.0) +
                           right * std::log2(right + 2.0)) +
                      (left + right) * CostWeights::kMergeRow;
  if (std::min(left, right) > options_.loop_join_threshold) {
    loop_cost = std::numeric_limits<double>::infinity();
  }
  if (loop_cost <= hash_cost && loop_cost <= merge_cost) {
    node->join_algorithm = JoinAlgorithm::kLoop;
  } else if (hash_cost <= merge_cost) {
    node->join_algorithm = JoinAlgorithm::kHash;
  } else {
    node->join_algorithm = JoinAlgorithm::kMerge;
  }
}

}  // namespace cloudviews
