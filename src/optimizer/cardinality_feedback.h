#ifndef CLOUDVIEWS_OPTIMIZER_CARDINALITY_FEEDBACK_H_
#define CLOUDVIEWS_OPTIMIZER_CARDINALITY_FEEDBACK_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/hash.h"

namespace cloudviews {

// Per-subexpression cardinality feedback — the section 5.2 follow-on: "the
// insights service evolved into an independent component that could serve
// many different kinds of insights, e.g., cardinality", and the
// Microlearner idea of "high accuracy micro-models for specific portions of
// the workload". Each recurring signature gets a tiny model (an EWMA over
// observed row/byte counts) that the optimizer can consult for *any*
// repeated subexpression — not just materialized ones — displacing the
// error-prone static estimates that cause over-partitioning.

struct ObservedCardinality {
  double rows = 0.0;
  double bytes = 0.0;
  int64_t observations = 0;
};

class CardinalityFeedback {
 public:
  // `smoothing` is the EWMA weight of the newest observation. Recurring
  // jobs drift slowly (new data each day), so recent days dominate.
  explicit CardinalityFeedback(double smoothing = 0.4)
      : smoothing_(smoothing) {}

  CardinalityFeedback(const CardinalityFeedback&) = delete;
  CardinalityFeedback& operator=(const CardinalityFeedback&) = delete;

  // Folds one observed execution of a recurring subexpression into its
  // micro-model.
  void Record(const Hash128& recurring_signature, uint64_t rows,
              uint64_t bytes);

  // Serves the model, if one exists with at least `min_observations`.
  std::optional<ObservedCardinality> Lookup(
      const Hash128& recurring_signature, int64_t min_observations = 1) const;

  size_t size() const { return models_.size(); }
  int64_t lookups() const { return lookups_; }
  int64_t hits() const { return hits_; }

  void Clear() { models_.clear(); }

 private:
  double smoothing_;
  std::unordered_map<Hash128, ObservedCardinality, Hash128Hasher> models_;
  mutable int64_t lookups_ = 0;
  mutable int64_t hits_ = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_CARDINALITY_FEEDBACK_H_
