#ifndef CLOUDVIEWS_OPTIMIZER_COMPENSATION_H_
#define CLOUDVIEWS_OPTIMIZER_COMPENSATION_H_

#include <string>

#include "common/hash.h"
#include "plan/containment.h"
#include "plan/logical_plan.h"
#include "storage/schema.h"

namespace cloudviews {

// The one plan fragment BuildCompensation returns. `view_scan` points at
// the ViewScan leaf inside `root` so the optimizer can annotate it with
// observed statistics without re-walking the fragment.
struct CompensationPlan {
  LogicalOpPtr root;
  LogicalOp* view_scan = nullptr;
};

// Single entry point for splicing a materialized view into a plan
// (tools/lint.py enforces that optimizer code constructs ViewScans nowhere
// else). Builds, bottom-up: the ViewScan; a residual Filter when the proof
// carries residual conjuncts (folded in canonical conjunct order so plan
// verification and signatures stay stable); then at most one of
// re-aggregation (rollup compensation) or projection (column-subset
// compensation). An exact hit passes a default SubsumptionResult and gets
// the bare ViewScan.
CompensationPlan BuildCompensation(const Hash128& view_signature,
                                   const Hash128& view_recurring,
                                   const std::string& output_path,
                                   const Schema& view_schema,
                                   const SubsumptionResult& proof);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_COMPENSATION_H_
