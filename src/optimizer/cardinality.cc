#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

namespace cloudviews {

int CardinalityEstimator::CountConjuncts(const ExprPtr& predicate) {
  if (predicate == nullptr) return 0;
  if (predicate->kind == ExprKind::kBinary &&
      predicate->binary_op == sql::BinaryOp::kAnd) {
    return CountConjuncts(predicate->children[0]) +
           CountConjuncts(predicate->children[1]);
  }
  return 1;
}

double CardinalityEstimator::Annotate(LogicalOp* node) const {
  // Children are always annotated — even under a node with observed
  // statistics, the physical-operator choices below need their estimates.
  std::vector<double> child_rows;
  child_rows.reserve(node->children.size());
  for (const LogicalOpPtr& child : node->children) {
    child_rows.push_back(Annotate(child.get()));
  }
  if (node->stats_from_view && node->estimated_rows > 0) {
    // Observed statistics (from a materialized view or a cardinality
    // micro-model) are authoritative; do not overwrite with estimates.
    return node->estimated_rows;
  }
  double rows = EstimateNode(node, child_rows);
  node->estimated_rows = rows;
  // Rough bytes estimate: 16 bytes per column per row.
  node->estimated_bytes =
      rows * 16.0 * static_cast<double>(
                        std::max<size_t>(1, node->output_schema.num_columns()));
  return rows;
}

double CardinalityEstimator::EstimateNode(
    LogicalOp* node, const std::vector<double>& child_rows) const {
  switch (node->kind) {
    case LogicalOpKind::kScan: {
      auto dataset = catalog_ != nullptr ? catalog_->Lookup(node->dataset_name)
                                         : Status::NotFound("no catalog");
      if (dataset.ok()) {
        return static_cast<double>(dataset->table->num_rows());
      }
      return 1000.0;  // default guess for unknown inputs
    }
    case LogicalOpKind::kViewScan:
      // ViewScan estimates are installed by the view matcher from observed
      // statistics; if absent, assume a cooked (reduced) dataset.
      return node->estimated_rows > 0 ? node->estimated_rows : 100.0;
    case LogicalOpKind::kSharedScan:
      // SharedScan estimates are inherited from the replaced subtree by the
      // sharing rewrite; if absent, fall back to the view-scan guess.
      return node->estimated_rows > 0 ? node->estimated_rows : 100.0;
    case LogicalOpKind::kFilter: {
      int conjuncts = CountConjuncts(node->predicate);
      double sel = std::pow(options_.filter_selectivity,
                            std::max(1, conjuncts));
      return std::max(1.0, child_rows[0] * sel);
    }
    case LogicalOpKind::kProject:
      return child_rows[0];
    case LogicalOpKind::kJoin: {
      double cross = child_rows[0] * child_rows[1];
      double sel = 1.0;
      for (size_t i = 0; i < node->equi_keys.size(); ++i) {
        sel *= options_.join_key_selectivity;
      }
      if (node->predicate != nullptr) {
        sel *= std::pow(options_.filter_selectivity,
                        CountConjuncts(node->predicate));
      }
      double rows = std::max(1.0, cross * sel);
      // Over-partitioning bias: the engine habitually overestimates join
      // outputs, instantiating more containers than needed.
      rows *= options_.overestimation_factor;
      if (node->join_kind == sql::JoinKind::kLeft) {
        rows = std::max(rows, child_rows[0]);
      }
      return rows;
    }
    case LogicalOpKind::kAggregate: {
      if (node->group_by.empty()) return 1.0;
      // Square-root heuristic for the number of groups.
      return std::max(1.0, std::sqrt(child_rows[0]) *
                               static_cast<double>(node->group_by.size()));
    }
    case LogicalOpKind::kSort:
      return child_rows[0];
    case LogicalOpKind::kLimit:
      return std::min(child_rows[0], static_cast<double>(node->limit));
    case LogicalOpKind::kUnionAll: {
      double total = 0.0;
      for (double r : child_rows) total += r;
      return total;
    }
    case LogicalOpKind::kUdo: {
      double sel = node->udo_selectivity > 0
                       ? node->udo_selectivity
                       : options_.udo_default_selectivity;
      return std::max(1.0, child_rows[0] * sel);
    }
    case LogicalOpKind::kSpool:
      return child_rows[0];
  }
  return 1.0;
}

}  // namespace cloudviews
