#ifndef CLOUDVIEWS_OPTIMIZER_CARDINALITY_H_
#define CLOUDVIEWS_OPTIMIZER_CARDINALITY_H_

#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace cloudviews {

// Heuristic cardinality estimation (System-R style selectivities). Big-data
// engines notoriously overestimate intermediate cardinalities, which leads
// to over-partitioning and container waste (paper section 3.5); the
// `overestimation_factor` models that bias and is applied at every join.
// Estimates are written into each node's `estimated_rows`/`estimated_bytes`
// annotation unless the node already carries statistics fed back from a
// materialized view (stats_from_view), which are trusted as observed truth.
struct CardinalityOptions {
  double filter_selectivity = 0.25;    // per conjunct
  double join_key_selectivity = 0.01;  // per equi-key pair
  double udo_default_selectivity = 1.0;
  double overestimation_factor = 1.6;  // applied per join
};

class CardinalityEstimator {
 public:
  using Options = CardinalityOptions;

  explicit CardinalityEstimator(const DatasetCatalog* catalog,
                                Options options = {})
      : catalog_(catalog), options_(options) {}

  // Annotates the whole plan bottom-up; returns the root estimate.
  double Annotate(LogicalOp* node) const;

  const Options& options() const { return options_; }

 private:
  double EstimateNode(LogicalOp* node,
                      const std::vector<double>& child_rows) const;
  static int CountConjuncts(const ExprPtr& predicate);

  const DatasetCatalog* catalog_;
  Options options_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_CARDINALITY_H_
