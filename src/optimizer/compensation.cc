#include "optimizer/compensation.h"

#include <utility>

namespace cloudviews {

CompensationPlan BuildCompensation(const Hash128& view_signature,
                                   const Hash128& view_recurring,
                                   const std::string& output_path,
                                   const Schema& view_schema,
                                   const SubsumptionResult& proof) {
  CompensationPlan plan;
  LogicalOpPtr node =
      LogicalOp::ViewScan(view_signature, output_path, view_schema);
  node->view_recurring_signature = view_recurring;
  plan.view_scan = node.get();
  if (!proof.residual.empty()) {
    node = LogicalOp::Filter(std::move(node),
                             CanonicalConjunction(proof.residual));
  }
  if (proof.needs_reaggregate) {
    node = LogicalOp::Aggregate(std::move(node), proof.reaggregate_group_by,
                                proof.reaggregate_aggs);
  } else if (proof.needs_project) {
    node = LogicalOp::Project(std::move(node), proof.project_exprs,
                              proof.project_names);
  }
  plan.root = std::move(node);
  return plan;
}

}  // namespace cloudviews
