#include "optimizer/cardinality_feedback.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {

void CardinalityFeedback::Record(const Hash128& recurring_signature,
                                 uint64_t rows, uint64_t bytes) {
  auto [it, inserted] =
      models_.emplace(recurring_signature, ObservedCardinality{});
  ObservedCardinality& model = it->second;
  if (inserted || model.observations == 0) {
    model.rows = static_cast<double>(rows);
    model.bytes = static_cast<double>(bytes);
  } else {
    model.rows = smoothing_ * static_cast<double>(rows) +
                 (1.0 - smoothing_) * model.rows;
    model.bytes = smoothing_ * static_cast<double>(bytes) +
                  (1.0 - smoothing_) * model.bytes;
  }
  model.observations += 1;
}

std::optional<ObservedCardinality> CardinalityFeedback::Lookup(
    const Hash128& recurring_signature, int64_t min_observations) const {
  // Signature-keyed micro-model cache telemetry (the section 5.2 loop).
  static obs::Counter& cache_hits =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kSignatureCacheLookupHit);
  static obs::Counter& cache_misses =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kSignatureCacheLookupMiss);
  lookups_ += 1;
  auto it = models_.find(recurring_signature);
  if (it == models_.end() || it->second.observations < min_observations) {
    cache_misses.Increment();
    return std::nullopt;
  }
  hits_ += 1;
  cache_hits.Increment();
  return it->second;
}

}  // namespace cloudviews
