#ifndef CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
#define CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_

#include "plan/logical_plan.h"

namespace cloudviews {

// Estimated-cost model over annotated plans (requires estimated_rows to be
// filled in by the CardinalityEstimator). Costs are in the same abstract
// units the executor reports, so estimated and observed costs compare
// directly. Also picks physical join algorithms.
struct CostModelOptions {
  // Row-count threshold below which a nested-loop join beats building a
  // hash table.
  double loop_join_threshold = 32.0;
  // Build-side threshold above which merge join beats hash join (models a
  // memory budget on the hash table in each container).
  double hash_build_limit = 200000.0;
  // Degree of parallelism the executor will run the plan at; feeds the
  // latency estimate (SubtreeLatencyCost). 1 = serial.
  int dop = 1;
  // Fraction of the work that morsel-parallelizes (Amdahl's law). Barriers
  // — hash-table publication, aggregate merge, the serial partition pass —
  // make up the rest.
  double parallel_fraction = 0.9;
  // Morsel size and per-morsel scheduling overhead (cost units): finer
  // morsels balance better but pay more queue traffic.
  double morsel_rows = 4096.0;
  double morsel_overhead = 2.0;
};

class CostModel {
 public:
  using Options = CostModelOptions;

  explicit CostModel(Options options = {}) : options_(options) {}

  // Estimated cost of the subtree rooted at `node` (inclusive). This is
  // total work, independent of parallelism.
  double SubtreeCost(const LogicalOp& node) const;

  // Estimated latency-equivalent cost of executing the subtree at
  // options.dop: Amdahl's law over parallel_fraction plus a per-morsel
  // scheduling charge. Equals SubtreeCost exactly at dop = 1, so serial
  // plan comparisons are unchanged.
  double SubtreeLatencyCost(const LogicalOp& node) const;

  // Cost of reading a materialized copy of this subexpression instead of
  // recomputing it (`observed_bytes` from the view's statistics).
  double ViewScanCost(double observed_rows, double observed_bytes) const;

  // Chooses join_algorithm for every join in the plan based on estimates.
  void ChooseJoinAlgorithms(LogicalOp* node) const;

 private:
  double NodeCost(const LogicalOp& node) const;

  Options options_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
