#ifndef CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
#define CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_

#include "plan/logical_plan.h"

namespace cloudviews {

// Estimated-cost model over annotated plans (requires estimated_rows to be
// filled in by the CardinalityEstimator). Costs are in the same abstract
// units the executor reports, so estimated and observed costs compare
// directly. Also picks physical join algorithms.
struct CostModelOptions {
  // Row-count threshold below which a nested-loop join beats building a
  // hash table.
  double loop_join_threshold = 32.0;
  // Build-side threshold above which merge join beats hash join (models a
  // memory budget on the hash table in each container).
  double hash_build_limit = 200000.0;
};

class CostModel {
 public:
  using Options = CostModelOptions;

  explicit CostModel(Options options = {}) : options_(options) {}

  // Estimated cost of the subtree rooted at `node` (inclusive).
  double SubtreeCost(const LogicalOp& node) const;

  // Cost of reading a materialized copy of this subexpression instead of
  // recomputing it (`observed_bytes` from the view's statistics).
  double ViewScanCost(double observed_rows, double observed_bytes) const;

  // Chooses join_algorithm for every join in the plan based on estimates.
  void ChooseJoinAlgorithms(LogicalOp* node) const;

 private:
  double NodeCost(const LogicalOp& node) const;

  Options options_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_COST_MODEL_H_
