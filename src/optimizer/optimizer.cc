#include "optimizer/optimizer.h"

#include <functional>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/cardinality_feedback.h"
#include "optimizer/compensation.h"
#include "verify/plan_verifier.h"
#include "verify/verify.h"

namespace cloudviews {

namespace {

// Sums the estimated rows/bytes of the base-table scans under `op`: the
// data a view scan shields from being read again. Leaf scan estimates are
// catalog-exact, so these are observed quantities, not guesses. A subtree
// about to be matched was never rewritten below (matching is top-down), so
// kViewScan leaves cannot occur inside it.
void SumBaseScanVolume(const LogicalOp& op, double* rows, double* bytes) {
  if (op.kind == LogicalOpKind::kScan) {
    *rows += op.estimated_rows;
    *bytes += op.estimated_bytes;
  }
  for (const LogicalOpPtr& child : op.children) {
    SumBaseScanVolume(*child, rows, bytes);
  }
}

}  // namespace

Status Optimizer::VerifyAfterRule(const char* rule,
                                  const OptimizationOutcome& outcome,
                                  bool algorithms_chosen) const {
  if constexpr (!verify::RuntimeChecksEnabled()) {
    (void)rule;
    (void)outcome;
    (void)algorithms_chosen;
    return Status::OK();
  }
  verify::PlanVerifyOptions options;
  options.catalog = catalog_;
  options.signatures = &signatures_;
  options.require_reuse_signatures = true;
  options.algorithms_chosen = algorithms_chosen;
  return verify::PlanVerifier(options).VerifyAfterRule(rule, *outcome.plan);
}

void Optimizer::AnnotateWithFeedback(LogicalOp* node) const {
  if (options_.cardinality_feedback != nullptr) {
    // Bottom-up: install micro-model estimates wherever a repeated
    // subexpression has observed history. Parents' static estimates then
    // build on observed child cardinalities instead of compounding errors.
    std::function<void(LogicalOp*)> install = [&](LogicalOp* op) {
      for (const LogicalOpPtr& child : op->children) install(child.get());
      if (op->stats_from_view) return;  // view stats are already observed
      if (op->kind == LogicalOpKind::kScan ||
          op->kind == LogicalOpKind::kViewScan ||
          op->kind == LogicalOpKind::kSpool) {
        return;  // leaves are exact; spools are transparent
      }
      NodeSignature sig = signatures_.Compute(*op);
      if (!sig.eligible) return;
      auto model = options_.cardinality_feedback->Lookup(
          sig.recurring, /*min_observations=*/2);
      if (model.has_value()) {
        op->estimated_rows = model->rows;
        op->estimated_bytes = model->bytes;
        op->stats_from_view = true;  // observed, authoritative
      }
    };
    install(node);
  }
  estimator_.Annotate(node);
}

Result<OptimizationOutcome> Optimizer::Optimize(
    const LogicalOpPtr& plan, const QueryAnnotations& annotations,
    const ViewStore* view_store, const TryLockFn& try_lock, double now,
    obs::DecisionSink decisions) const {
  obs::Span span("optimize", "opt");
  OptimizationOutcome outcome;
  outcome.plan = plan->Clone();

  // Entry check: a malformed input plan fails before any rule runs, so rule
  // firings below can only be blamed for violations they introduced.
  CLOUDVIEWS_RETURN_NOT_OK(
      VerifyAfterRule("input", outcome, /*algorithms_chosen=*/false));

  // Baseline estimate (what the plan would cost without any reuse).
  AnnotateWithFeedback(outcome.plan.get());
  cost_model_.ChooseJoinAlgorithms(outcome.plan.get());
  outcome.estimated_cost_without_reuse =
      cost_model_.SubtreeCost(*outcome.plan);
  CLOUDVIEWS_RETURN_NOT_OK(VerifyAfterRule("choose_join_algorithms", outcome,
                                           /*algorithms_chosen=*/true));

  // Snapshot the unrewritten alternative before any reuse rewrite: the
  // graceful-degradation path executes this plan when a matched view fails
  // validation (or vanishes) at execution time.
  if ((options_.enable_view_matching && view_store != nullptr) ||
      (options_.enable_view_building && try_lock != nullptr)) {
    outcome.plan_without_reuse = outcome.plan->Clone();
  }

  // Phase 1 — core search, top-down: replace the largest materialized
  // subexpressions with view scans.
  if (options_.enable_view_matching && view_store != nullptr) {
    obs::Span match_span("view-match", "opt");
    match_span.Arg("job_id", decisions.job_id());
    auto matched =
        MatchViews(&outcome.plan, view_store, now, &outcome, decisions);
    if (!matched.ok()) return matched.status();
    outcome.views_matched = *matched;
    match_span.Arg("matched", static_cast<int64_t>(outcome.views_matched));
    // Re-annotate: view scans carry observed statistics which propagate
    // upward, and join algorithms may change with the corrected estimates.
    AnnotateWithFeedback(outcome.plan.get());
    cost_model_.ChooseJoinAlgorithms(outcome.plan.get());
    CLOUDVIEWS_RETURN_NOT_OK(VerifyAfterRule("rechoose_join_algorithms",
                                             outcome,
                                             /*algorithms_chosen=*/true));
  }

  // Phase 2 — follow-up optimization, bottom-up: propose materializations
  // for selected candidates and add spools where the lock is granted.
  if (options_.enable_view_building && try_lock != nullptr &&
      !annotations.materialize_candidates.empty()) {
    obs::Span build_span("view-build", "opt");
    build_span.Arg("job_id", decisions.job_id());
    int total_added = 0;
    CLOUDVIEWS_RETURN_NOT_OK(BuildViews(&outcome.plan, annotations,
                                        view_store, try_lock, now, &outcome,
                                        &total_added, decisions));
    outcome.spools_added = total_added;
    AnnotateWithFeedback(outcome.plan.get());
    build_span.Arg("spools_added", static_cast<int64_t>(total_added));
  }

  outcome.estimated_cost = cost_model_.SubtreeCost(*outcome.plan);
  return outcome;
}

Result<int> Optimizer::MatchViews(LogicalOpPtr* node,
                                  const ViewStore* view_store, double now,
                                  OptimizationOutcome* outcome,
                                  const obs::DecisionSink& decisions) const {
  LogicalOp& op = **node;
  // Never rewrite reuse infrastructure itself.
  if (op.kind != LogicalOpKind::kViewScan && op.kind != LogicalOpKind::kSpool) {
    NodeSignature sig = signatures_.Compute(op);
    if (sig.eligible && sig.subtree_size > 1) {
      const MaterializedView* view = view_store->Find(sig.strict, now);
      if (view != nullptr && view->table != nullptr) {
        // Cost check: reuse only when scanning the view is cheaper than
        // recomputing the subexpression (the memo keeps both options and
        // picks the cheaper; we compare directly).
        double recompute = cost_model_.SubtreeCost(op);
        double reuse =
            cost_model_.ViewScanCost(static_cast<double>(view->observed_rows),
                                     static_cast<double>(view->observed_bytes));
        static obs::Counter& rule_fired =
            obs::MetricsRegistry::Global().counter(
                obs::metric_names::kOptimizerRuleViewMatch);
        static obs::Counter& cost_rejected =
            obs::MetricsRegistry::Global().counter(
                obs::metric_names::kOptimizerViewMatchCostRejected);
        obs::Span decide_span("view-match-decide", "opt");
        if (decide_span.active()) {
          decide_span.Arg("job_id", decisions.job_id());
          decide_span.Arg("signature", sig.strict.ToHex());
        }
        if (reuse < recompute) {
          rule_fired.Increment();
          static obs::Counter& exact_hits =
              obs::MetricsRegistry::Global().counter(
                  obs::metric_names::kReuseHitsExact);
          exact_hits.Increment();
          MatchedViewDetail detail;
          detail.strict = sig.strict;
          detail.recompute_cost = recompute;
          detail.recompute_latency_cost = cost_model_.SubtreeLatencyCost(op);
          detail.view_scan_cost = reuse;
          SumBaseScanVolume(op, &detail.rows_avoided, &detail.bytes_avoided);
          outcome->matched_details.push_back(detail);
          if (decide_span.active()) {
            decide_span.Arg("reason", obs::DecisionReasonName(
                                          obs::DecisionReason::kExactHit));
          }
          if (decisions.Active()) {
            obs::DecisionEvent event;
            event.stage = obs::DecisionStage::kExactMatch;
            event.reason = obs::DecisionReason::kExactHit;
            event.node_strict = sig.strict;
            event.candidate_strict = sig.strict;
            event.match_class = signatures_.ComputeMatchClass(op);
            event.recompute_cost = recompute;
            event.view_scan_cost = reuse;
            event.saving = detail.recompute_latency_cost - reuse;
            decisions.Record(std::move(event));
          }
          CompensationPlan comp =
              BuildCompensation(sig.strict, sig.recurring, view->output_path,
                                op.output_schema, SubsumptionResult{});
          // Feed observed statistics from the past execution back into the
          // plan — the "accurate cost estimates" benefit.
          comp.view_scan->estimated_rows =
              static_cast<double>(view->observed_rows);
          comp.view_scan->estimated_bytes =
              static_cast<double>(view->observed_bytes);
          comp.view_scan->stats_from_view = true;
          *node = std::move(comp.root);
          outcome->matched_signatures.push_back(sig.strict);
          CLOUDVIEWS_RETURN_NOT_OK(VerifyAfterRule(
              "view_match", *outcome, /*algorithms_chosen=*/true));
          return 1;
        }
        cost_rejected.Increment();
        if (decide_span.active()) {
          decide_span.Arg("reason",
                          obs::DecisionReasonName(
                              obs::DecisionReason::kExactCostRejected));
        }
        if (decisions.Active()) {
          obs::DecisionEvent event;
          event.stage = obs::DecisionStage::kExactMatch;
          event.reason = obs::DecisionReason::kExactCostRejected;
          event.node_strict = sig.strict;
          event.candidate_strict = sig.strict;
          event.match_class = signatures_.ComputeMatchClass(op);
          event.recompute_cost = recompute;
          event.view_scan_cost = reuse;
          event.saving = cost_model_.SubtreeLatencyCost(op) - reuse;
          decisions.Record(std::move(event));
        }
      }
      if (view == nullptr || view->table == nullptr) {
        if (decisions.Active()) {
          // The "why didn't this job hit a view?" anchor event: no sealed
          // live view under this strict signature. No candidate was priced,
          // so no saving is attributed here — the generalized pipeline's
          // per-candidate events below carry the foregone estimates.
          obs::DecisionEvent event;
          event.stage = obs::DecisionStage::kExactMatch;
          event.reason = obs::DecisionReason::kExactMissNoView;
          event.node_strict = sig.strict;
          event.match_class = signatures_.ComputeMatchClass(op);
          event.recompute_cost = cost_model_.SubtreeCost(op);
          decisions.Record(std::move(event));
        }
        // Exact miss: try containment against indexed definitions in the
        // same match class.
        if (options_.enable_generalized_matching &&
            options_.generalized_index != nullptr) {
          auto generalized = TryGeneralizedMatch(node, sig, view_store, now,
                                                 outcome, decisions);
          if (!generalized.ok()) return generalized.status();
          if (*generalized == 1) return 1;
        }
      }
    }
  }
  // No match here: recurse (top-down means larger subexpressions got their
  // chance before their descendants).
  int matched = 0;
  for (LogicalOpPtr& child : op.children) {
    auto child_matched =
        MatchViews(&child, view_store, now, outcome, decisions);
    if (!child_matched.ok()) return child_matched.status();
    matched += *child_matched;
  }
  return matched;
}

Result<int> Optimizer::TryGeneralizedMatch(LogicalOpPtr* node,
                                           const NodeSignature& sig,
                                           const ViewStore* view_store,
                                           double now,
                                           OptimizationOutcome* outcome,
                                           const obs::DecisionSink& decisions)
    const {
  LogicalOp& op = **node;
  const GeneralizedViewIndex& index = *options_.generalized_index;
  const Hash128 class_key = signatures_.ComputeMatchClass(op);
  const auto& candidates = index.CandidatesFor(class_key);
  if (candidates.empty()) return 0;
  const SubsumptionFeatures query_features = ComputeSubsumptionFeatures(op);
  static obs::Counter& candidates_seen =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kGeneralizedCandidates);
  static obs::Counter& filter_pruned = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kGeneralizedFilterPruned);
  static obs::Counter& exact_checks = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kGeneralizedExactChecks);
  static obs::Counter& subsumed_hits = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kReuseHitsSubsumed);
  // Query-side costs for foregone-saving estimates, priced once per subtree
  // (only when the ledger is on — the disabled path stays load-and-go).
  double trace_latency = 0.0;
  const bool tracing_decisions = decisions.Active();
  if (tracing_decisions) {
    trace_latency = cost_model_.SubtreeLatencyCost(op);
  }
  // What the candidate's view scan is estimated to cost, from the indexed
  // definition's annotated estimates — no view-store lookup (a lookup would
  // bump the views.lookup.* metrics and perturb telemetry).
  const auto candidate_scan_cost =
      [this](const GeneralizedViewIndex::Entry& cand) {
        return cost_model_.ViewScanCost(cand.definition->estimated_rows,
                                        cand.definition->estimated_bytes);
      };
  const auto record_candidate_miss =
      [&](const GeneralizedViewIndex::Entry& cand, obs::DecisionReason reason,
          std::string detail) {
        obs::DecisionEvent event;
        event.stage = obs::DecisionStage::kGeneralizedMatch;
        event.reason = reason;
        event.node_strict = sig.strict;
        event.candidate_strict = cand.strict;
        event.match_class = class_key;
        event.recompute_cost = cost_model_.SubtreeCost(op);
        event.view_scan_cost = candidate_scan_cost(cand);
        event.saving = trace_latency - event.view_scan_cost;
        event.detail = std::move(detail);
        decisions.Record(std::move(event));
      };
  for (const GeneralizedViewIndex::Entry& cand : candidates) {
    candidates_seen.Increment();
    if (!FeatureMayContain(cand.features, query_features)) {
      filter_pruned.Increment();
      if (tracing_decisions) {
        record_candidate_miss(cand,
                              obs::DecisionReason::kStage1FeaturePruned,
                              std::string());
      }
      if constexpr (verify::RuntimeChecksEnabled()) {
        // No-false-prune assertion: the feature filter claims the exact
        // checker would reject; run it and fail loudly if it would not.
        SubsumptionResult check = CheckSubsumption(op, *cand.definition);
        if (check.contained) {
          return Status::Corruption(
              "generalized matching: stage-1 feature filter pruned a "
              "candidate the containment checker accepts");
        }
      }
      continue;
    }
    exact_checks.Increment();
    obs::Span check_span("containment-check", "opt");
    if (check_span.active()) {
      check_span.Arg("job_id", decisions.job_id());
      check_span.Arg("candidate", cand.strict.ToHex());
    }
    SubsumptionResult proof = CheckSubsumption(op, *cand.definition);
    if (!proof.contained) {
      if (check_span.active()) {
        check_span.Arg("reason",
                       obs::DecisionReasonName(
                           obs::DecisionReason::kStage2NotContained));
        check_span.Arg("detail", proof.reject_reason);
      }
      if (tracing_decisions) {
        record_candidate_miss(cand, obs::DecisionReason::kStage2NotContained,
                              proof.reject_reason);
      }
      continue;
    }
    // A proof is only useful while the materialized result is live.
    const MaterializedView* view = view_store->Find(cand.strict, now);
    if (view == nullptr || view->table == nullptr) {
      if (tracing_decisions) {
        record_candidate_miss(cand,
                              obs::DecisionReason::kCandidateViewNotLive,
                              std::string());
      }
      continue;
    }
    obs::Span comp_span("compensation", "opt");
    if (comp_span.active()) {
      comp_span.Arg("job_id", decisions.job_id());
      comp_span.Arg("candidate", cand.strict.ToHex());
    }
    CompensationPlan comp =
        BuildCompensation(cand.strict, cand.recurring, view->output_path,
                          cand.definition->output_schema, proof);
    comp.view_scan->estimated_rows =
        static_cast<double>(view->observed_rows);
    comp.view_scan->estimated_bytes =
        static_cast<double>(view->observed_bytes);
    comp.view_scan->stats_from_view = true;
    // Price the residual filter / re-aggregation / projection work on top
    // of the view scan: compensation must pay for itself.
    estimator_.Annotate(comp.root.get());
    const double recompute = cost_model_.SubtreeCost(op);
    const double reuse = cost_model_.SubtreeCost(*comp.root);
    if (reuse >= recompute) {
      static obs::Counter& cost_rejected =
          obs::MetricsRegistry::Global().counter(
              obs::metric_names::kOptimizerViewMatchCostRejected);
      cost_rejected.Increment();
      if (comp_span.active()) {
        comp_span.Arg("reason",
                      obs::DecisionReasonName(
                          obs::DecisionReason::kSubsumedCostRejected));
      }
      if (tracing_decisions) {
        obs::DecisionEvent event;
        event.stage = obs::DecisionStage::kGeneralizedMatch;
        event.reason = obs::DecisionReason::kSubsumedCostRejected;
        event.node_strict = sig.strict;
        event.candidate_strict = cand.strict;
        event.match_class = class_key;
        event.recompute_cost = recompute;
        event.view_scan_cost = reuse;
        event.saving = trace_latency - reuse;
        decisions.Record(std::move(event));
      }
      continue;
    }
    static obs::Counter& rule_fired = obs::MetricsRegistry::Global().counter(
        obs::metric_names::kOptimizerRuleViewMatch);
    rule_fired.Increment();
    subsumed_hits.Increment();
    if (comp_span.active()) {
      comp_span.Arg("reason", obs::DecisionReasonName(
                                  obs::DecisionReason::kSubsumedHit));
    }
    MatchedViewDetail detail;
    detail.strict = cand.strict;
    detail.recompute_cost = recompute;
    detail.recompute_latency_cost = cost_model_.SubtreeLatencyCost(op);
    detail.view_scan_cost = reuse;
    detail.subsumed = true;
    SumBaseScanVolume(op, &detail.rows_avoided, &detail.bytes_avoided);
    outcome->matched_details.push_back(detail);
    if (tracing_decisions) {
      obs::DecisionEvent event;
      event.stage = obs::DecisionStage::kGeneralizedMatch;
      event.reason = obs::DecisionReason::kSubsumedHit;
      event.node_strict = sig.strict;
      event.candidate_strict = cand.strict;
      event.match_class = class_key;
      event.recompute_cost = recompute;
      event.view_scan_cost = reuse;
      event.saving = detail.recompute_latency_cost - reuse;
      decisions.Record(std::move(event));
    }
    if constexpr (verify::RuntimeChecksEnabled()) {
      SubsumedMatchAudit audit;
      audit.view_strict = cand.strict;
      audit.query_subtree = op.Clone();
      audit.view_definition = cand.definition->Clone();
      audit.residual = proof.residual;
      outcome->subsumed_audits.push_back(std::move(audit));
    }
    *node = std::move(comp.root);
    outcome->matched_signatures.push_back(cand.strict);
    outcome->views_matched_subsumed += 1;
    CLOUDVIEWS_RETURN_NOT_OK(VerifyAfterRule("generalized_view_match",
                                             *outcome,
                                             /*algorithms_chosen=*/true));
    return 1;
  }
  return 0;
}

Status Optimizer::BuildViews(LogicalOpPtr* node,
                             const QueryAnnotations& annotations,
                             const ViewStore* view_store,
                             const TryLockFn& try_lock, double now,
                             OptimizationOutcome* outcome, int* total_added,
                             const obs::DecisionSink& decisions) const {
  LogicalOp& op = **node;
  // Bottom-up: children first, so inner candidates materialize too (a spool
  // below another candidate still contributes to the outer subexpression).
  // A `break` on cap exhaustion (instead of an early return) lets the
  // cap-reached verdict below be recorded for this node when it is itself a
  // selected candidate; the spool outcome is identical either way.
  for (LogicalOpPtr& child : op.children) {
    CLOUDVIEWS_RETURN_NOT_OK(BuildViews(&child, annotations, view_store,
                                        try_lock, now, outcome, total_added,
                                        decisions));
    if (*total_added >= annotations.max_views_per_job) break;
  }
  if (op.kind == LogicalOpKind::kSpool || op.kind == LogicalOpKind::kViewScan) {
    return Status::OK();
  }
  NodeSignature sig = signatures_.Compute(op);
  if (!sig.eligible) return Status::OK();
  if (annotations.materialize_candidates.count(sig.recurring) == 0) {
    return Status::OK();
  }
  // From here on `op` is a selected materialization candidate: every
  // verdict — injected, already covered, lock denied, cap exhausted — is a
  // recordable decision.
  const auto record_build = [&](obs::DecisionReason reason) {
    if (!decisions.Active()) return;
    obs::DecisionEvent event;
    event.stage = obs::DecisionStage::kViewBuild;
    event.reason = reason;
    event.node_strict = sig.strict;
    event.candidate_strict = sig.strict;
    event.match_class = signatures_.ComputeMatchClass(op);
    event.recompute_cost = cost_model_.SubtreeCost(op);
    decisions.Record(std::move(event));
  };
  if (*total_added >= annotations.max_views_per_job) {
    record_build(obs::DecisionReason::kSpoolCapReached);
    return Status::OK();
  }
  // Already materialized (or being materialized by another job)?
  if (view_store != nullptr && view_store->FindAny(sig.strict) != nullptr) {
    record_build(obs::DecisionReason::kSpoolAlreadyMaterialized);
    return Status::OK();
  }
  if (!try_lock(sig.strict)) {
    record_build(obs::DecisionReason::kSpoolLockDenied);
    return Status::OK();
  }
  // Wrap with a spool: one consumer feeds the rest of this job, the other
  // writes the common subexpression to stable storage.
  LogicalOpPtr spool = LogicalOp::Spool(*node);
  spool->view_signature = sig.strict;
  *node = std::move(spool);
  static obs::Counter& rule_fired =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kOptimizerRuleSpoolInject);
  rule_fired.Increment();
  record_build(obs::DecisionReason::kSpoolInjected);
  outcome->proposed_materializations.push_back(sig.strict);
  *total_added += 1;
  return VerifyAfterRule("spool_inject", *outcome,
                         /*algorithms_chosen=*/true);
}

}  // namespace cloudviews
