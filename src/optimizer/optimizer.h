#ifndef CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_
#define CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "obs/decision.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "plan/containment.h"
#include "plan/logical_plan.h"
#include "plan/signature.h"
#include "plan/view_index.h"
#include "storage/catalog.h"
#include "storage/view_store.h"

namespace cloudviews {

// The query annotations fetched from the insights service at compile time:
// the set of subexpression signatures selected for materialization. In
// production this arrives as an annotations file indexed by job tags.
struct QueryAnnotations {
  // Recurring signatures the view selector chose to materialize. Recurring
  // (not strict) signatures, because future instances of a recurring job
  // read bulk-updated inputs with fresh GUIDs: their strict signatures are
  // new, but the recurring signature survives and identifies the template.
  std::unordered_set<Hash128, Hash128Hasher> materialize_candidates;
  // Per-job cap on spools added ("user control for #views/job").
  int max_views_per_job = 4;
};

class CardinalityFeedback;

struct OptimizerOptions {
  bool enable_view_matching = true;
  bool enable_view_building = true;
  // Generalized (containment-based) matching: when a subtree misses the
  // exact strict-signature lookup, candidates from `generalized_index` in
  // the same match class are feature-filtered and containment-checked, and
  // hits splice a compensated view scan. Off by default: exact-only is the
  // paper's baseline behavior.
  bool enable_generalized_matching = false;
  SignatureOptions signature_options;
  CardinalityEstimator::Options cardinality_options;
  CostModel::Options cost_options;
  // When set, repeated subexpressions take their row/byte estimates from
  // per-recurring-signature micro-models instead of static estimation (the
  // section 5.2 cardinality-insights loop). Not owned.
  const CardinalityFeedback* cardinality_feedback = nullptr;
  // Candidate index for generalized matching (owned by the workload
  // repository). Not owned; may be null (disables generalized matching).
  const GeneralizedViewIndex* generalized_index = nullptr;
};

// Everything known about one view-match rewrite at the moment it fired —
// the raw material for per-hit savings attribution in the provenance
// ledger: what recomputing the replaced subtree would have cost (in both
// work and latency terms), what the view scan costs instead, and how much
// base-table data the view shields.
struct MatchedViewDetail {
  Hash128 strict;
  double recompute_cost = 0.0;          // SubtreeCost of the replaced subtree
  double recompute_latency_cost = 0.0;  // SubtreeLatencyCost at the plan DOP
  double view_scan_cost = 0.0;          // cost of the (compensated) reuse
  double rows_avoided = 0.0;            // base-scan rows under the subtree
  double bytes_avoided = 0.0;           // base-scan bytes under the subtree
  bool subsumed = false;                // generalized (containment) hit
};

// One generalized hit, kept so the SignatureAuditor can independently
// re-verify the subsumption claim from its own serialization path. The
// query subtree is cloned pre-rewrite; the view definition comes from the
// candidate index (itself a clone of the spooled subtree).
struct SubsumedMatchAudit {
  Hash128 view_strict;
  LogicalOpPtr query_subtree;
  LogicalOpPtr view_definition;
  std::vector<ExprPtr> residual;
};

// What the optimizer did to the plan, surfaced to the monitoring tool and
// telemetry (paper Figure 5: "modified query plans are surfaced to users").
struct OptimizationOutcome {
  LogicalOpPtr plan;
  // The optimized plan with NO reuse rewrites (no view scans, no spools) —
  // join algorithms chosen, estimates annotated, executable as-is. Kept
  // whenever the reuse phases could have rewritten the plan, so the engine
  // can degrade to base scans when a matched view turns out to be corrupt,
  // vanished, or otherwise unreadable at execution time. Null when reuse
  // was disabled for the compile (then `plan` already is the base plan).
  LogicalOpPtr plan_without_reuse;
  int views_matched = 0;
  int views_matched_subsumed = 0;  // generalized hits among views_matched
  int spools_added = 0;
  std::vector<Hash128> matched_signatures;
  // One entry per matched_signatures element, same order.
  std::vector<MatchedViewDetail> matched_details;
  // One entry per generalized hit (verification builds only; empty in
  // Release). Consumed by ReuseEngine to run SignatureAuditor cross-checks.
  std::vector<SubsumedMatchAudit> subsumed_audits;
  std::vector<Hash128> proposed_materializations;
  double estimated_cost = 0.0;
  double estimated_cost_without_reuse = 0.0;
};

// The SCOPE-style optimizer with the two CloudViews phases:
//   1. Core search, top-down: match the largest already-materialized
//      subexpressions first and replace them with view scans, feeding the
//      view's observed statistics into the plan.
//   2. Follow-up optimization, bottom-up: wrap selected candidate
//      subexpressions with spool operators after acquiring a creation lock.
class Optimizer {
 public:
  // try_lock(signature) -> true if this job obtained the exclusive view
  // creation lock from the insights service.
  using TryLockFn = std::function<bool(const Hash128&)>;

  Optimizer(const DatasetCatalog* catalog, OptimizerOptions options = {})
      : catalog_(catalog), options_(options),
        estimator_(catalog, options.cardinality_options),
        cost_model_(options.cost_options),
        signatures_(options.signature_options) {}

  // Optimizes `plan` in place (the plan is cloned; the input is untouched).
  // `view_store` may be null (no reuse); `try_lock` may be null (no
  // materialization). `now` gates view expiry. `decisions` receives one
  // DecisionEvent per reuse-relevant choice (exact lookup, generalized
  // pipeline stages, spool policy) when its ledger is enabled; a
  // default-constructed sink records nothing, and recording never feeds
  // back into the optimization, so plans are identical either way.
  Result<OptimizationOutcome> Optimize(const LogicalOpPtr& plan,
                                       const QueryAnnotations& annotations,
                                       const ViewStore* view_store,
                                       const TryLockFn& try_lock, double now,
                                       obs::DecisionSink decisions = {}) const;

  const SignatureComputer& signatures() const { return signatures_; }

 private:
  // Installs micro-model estimates on repeated subexpressions, then runs
  // the static estimator over the rest.
  void AnnotateWithFeedback(LogicalOp* node) const;

  // Top-down view matching; returns the number of replacements. In
  // verification builds the whole plan is re-validated after every rewrite,
  // so a schema-breaking match fails at the rule that introduced it.
  Result<int> MatchViews(LogicalOpPtr* node, const ViewStore* view_store,
                         double now, OptimizationOutcome* outcome,
                         const obs::DecisionSink& decisions) const;

  // Generalized fallback for one subtree after an exact-signature miss:
  // class-key candidate lookup, stage-1 feature pruning (with the
  // no-false-prune assertion in verification builds), exact containment
  // check, compensation splice. Returns 1 when the subtree was rewritten.
  Result<int> TryGeneralizedMatch(LogicalOpPtr* node,
                                  const NodeSignature& sig,
                                  const ViewStore* view_store, double now,
                                  OptimizationOutcome* outcome,
                                  const obs::DecisionSink& decisions) const;

  // Bottom-up spool injection; increments *total_added (bounded by the
  // per-job cap). Re-validates after every injection in verification builds.
  Status BuildViews(LogicalOpPtr* node, const QueryAnnotations& annotations,
                    const ViewStore* view_store, const TryLockFn& try_lock,
                    double now, OptimizationOutcome* outcome,
                    int* total_added,
                    const obs::DecisionSink& decisions) const;

  // Re-validates the full plan after optimizer stage `rule`; compiled to a
  // no-op unless CLOUDVIEWS_VERIFY_RUNTIME is defined.
  Status VerifyAfterRule(const char* rule, const OptimizationOutcome& outcome,
                         bool algorithms_chosen) const;

  const DatasetCatalog* catalog_;
  OptimizerOptions options_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;
  SignatureComputer signatures_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_
