#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace cloudviews {

namespace {

const std::unordered_map<std::string, TokenType>& KeywordMap() {
  // lint:allow-new -- intentionally leaked singleton (no exit-order dtor)
  static const auto* kMap = new std::unordered_map<std::string, TokenType>{
      {"SELECT", TokenType::kSelect},   {"FROM", TokenType::kFrom},
      {"WHERE", TokenType::kWhere},     {"JOIN", TokenType::kJoin},
      {"INNER", TokenType::kInner},     {"LEFT", TokenType::kLeft},
      {"ON", TokenType::kOn},           {"GROUP", TokenType::kGroup},
      {"ORDER", TokenType::kOrder},     {"BY", TokenType::kBy},
      {"HAVING", TokenType::kHaving},   {"AS", TokenType::kAs},
      {"AND", TokenType::kAnd},         {"OR", TokenType::kOr},
      {"NOT", TokenType::kNot},         {"NULL", TokenType::kNull},
      {"TRUE", TokenType::kTrue},       {"FALSE", TokenType::kFalse},
      {"ASC", TokenType::kAsc},         {"DESC", TokenType::kDesc},
      {"LIMIT", TokenType::kLimit},     {"DISTINCT", TokenType::kDistinct},
      {"UNION", TokenType::kUnion},     {"ALL", TokenType::kAll},
      {"BETWEEN", TokenType::kBetween}, {"IN", TokenType::kIn},
      {"IS", TokenType::kIs},           {"LIKE", TokenType::kLike},
  };
  return *kMap;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "<end>";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "int";
    case TokenType::kDoubleLiteral:
      return "double";
    case TokenType::kStringLiteral:
      return "string";
    case TokenType::kSelect:
      return "SELECT";
    case TokenType::kFrom:
      return "FROM";
    case TokenType::kWhere:
      return "WHERE";
    case TokenType::kJoin:
      return "JOIN";
    case TokenType::kInner:
      return "INNER";
    case TokenType::kLeft:
      return "LEFT";
    case TokenType::kOn:
      return "ON";
    case TokenType::kGroup:
      return "GROUP";
    case TokenType::kOrder:
      return "ORDER";
    case TokenType::kBy:
      return "BY";
    case TokenType::kHaving:
      return "HAVING";
    case TokenType::kAs:
      return "AS";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kOr:
      return "OR";
    case TokenType::kNot:
      return "NOT";
    case TokenType::kNull:
      return "NULL";
    case TokenType::kTrue:
      return "TRUE";
    case TokenType::kFalse:
      return "FALSE";
    case TokenType::kAsc:
      return "ASC";
    case TokenType::kDesc:
      return "DESC";
    case TokenType::kLimit:
      return "LIMIT";
    case TokenType::kDistinct:
      return "DISTINCT";
    case TokenType::kUnion:
      return "UNION";
    case TokenType::kAll:
      return "ALL";
    case TokenType::kBetween:
      return "BETWEEN";
    case TokenType::kIn:
      return "IN";
    case TokenType::kIs:
      return "IS";
    case TokenType::kLike:
      return "LIKE";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kPercent:
      return "%";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
  }
  return "?";
}

Lexer::Lexer(std::string source) : source_(std::move(source)) {}

char Lexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < source_.size() ? source_[i] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < source_.size()) {
    char c = source_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pos_ += 1;
    } else if (c == '-' && Peek(1) == '-') {
      while (pos_ < source_.size() && source_[pos_] != '\n') pos_ += 1;
    } else {
      break;
    }
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.position = pos_;
  if (pos_ >= source_.size()) {
    tok.type = TokenType::kEnd;
    return tok;
  }
  char c = source_[pos_];

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      pos_ += 1;
    }
    tok.text = source_.substr(start, pos_ - start);
    auto it = KeywordMap().find(ToUpper(tok.text));
    tok.type = it != KeywordMap().end() ? it->second : TokenType::kIdentifier;
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
      pos_ += 1;
    }
    if (Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      pos_ += 1;
      while (pos_ < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
        pos_ += 1;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t exp = pos_ + 1;
      if (exp < source_.size() && (source_[exp] == '+' || source_[exp] == '-'))
        exp += 1;
      if (exp < source_.size() &&
          std::isdigit(static_cast<unsigned char>(source_[exp]))) {
        is_double = true;
        pos_ = exp;
        while (pos_ < source_.size() &&
               std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
          pos_ += 1;
        }
      }
    }
    tok.text = source_.substr(start, pos_ - start);
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::strtod(tok.text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntLiteral;
      tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
    }
    return tok;
  }

  if (c == '\'') {
    pos_ += 1;
    std::string value;
    while (true) {
      if (pos_ >= source_.size()) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(tok.position));
      }
      char ch = source_[pos_];
      if (ch == '\'') {
        if (Peek(1) == '\'') {  // '' escape
          value.push_back('\'');
          pos_ += 2;
          continue;
        }
        pos_ += 1;
        break;
      }
      value.push_back(ch);
      pos_ += 1;
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(value);
    return tok;
  }

  auto single = [&](TokenType type) {
    tok.type = type;
    pos_ += 1;
    return tok;
  };
  switch (c) {
    case ',':
      return single(TokenType::kComma);
    case '.':
      return single(TokenType::kDot);
    case '(':
      return single(TokenType::kLParen);
    case ')':
      return single(TokenType::kRParen);
    case '*':
      return single(TokenType::kStar);
    case '+':
      return single(TokenType::kPlus);
    case '-':
      return single(TokenType::kMinus);
    case '/':
      return single(TokenType::kSlash);
    case '%':
      return single(TokenType::kPercent);
    case '=':
      return single(TokenType::kEq);
    case '<':
      if (Peek(1) == '=') {
        tok.type = TokenType::kLe;
        pos_ += 2;
        return tok;
      }
      if (Peek(1) == '>') {
        tok.type = TokenType::kNe;
        pos_ += 2;
        return tok;
      }
      return single(TokenType::kLt);
    case '>':
      if (Peek(1) == '=') {
        tok.type = TokenType::kGe;
        pos_ += 2;
        return tok;
      }
      return single(TokenType::kGt);
    case '!':
      if (Peek(1) == '=') {
        tok.type = TokenType::kNe;
        pos_ += 2;
        return tok;
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument("unexpected character '" +
                                 std::string(1, c) + "' at offset " +
                                 std::to_string(pos_));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    Result<Token> tok = Next();
    if (!tok.ok()) return tok.status();
    tokens.push_back(std::move(tok).value());
    if (tokens.back().type == TokenType::kEnd) break;
  }
  return tokens;
}

}  // namespace cloudviews
