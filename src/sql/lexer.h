#ifndef CLOUDVIEWS_SQL_LEXER_H_
#define CLOUDVIEWS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace cloudviews {

// Tokenizes a SQL string. Keywords are case-insensitive; identifiers keep
// their original spelling. String literals use single quotes with ''
// escaping. Comments: -- to end of line.
class Lexer {
 public:
  explicit Lexer(std::string source);

  // Tokenizes the whole input. On success the final token is kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(size_t ahead = 0) const;
  void SkipWhitespaceAndComments();

  std::string source_;
  size_t pos_ = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_SQL_LEXER_H_
