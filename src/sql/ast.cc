#include "sql/ast.h"

namespace cloudviews {
namespace sql {

AstExprPtr AstExpr::Literal(Value v) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

AstExprPtr AstExpr::Column(std::string qualifier, std::string name) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(name);
  return e;
}

AstExprPtr AstExpr::Star() {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kStar;
  return e;
}

AstExprPtr AstExpr::Unary(UnaryOp op, AstExprPtr operand) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

AstExprPtr AstExpr::Binary(BinaryOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

AstExprPtr AstExpr::Call(std::string name, std::vector<AstExprPtr> args) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kFunctionCall;
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

}  // namespace sql
}  // namespace cloudviews
