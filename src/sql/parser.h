#ifndef CLOUDVIEWS_SQL_PARSER_H_
#define CLOUDVIEWS_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace cloudviews {
namespace sql {

// Recursive-descent parser for the SCOPE-flavoured SQL subset:
//
//   SELECT [DISTINCT] expr [AS alias], ...
//   FROM table [alias]
//   [ [INNER|LEFT] JOIN table [alias] [ON expr] ]...
//   [WHERE expr] [GROUP BY expr, ...] [HAVING expr]
//   [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//   [UNION ALL <select>]
//
// Expression grammar (precedence low to high):
//   or, and, not, comparison (=, <>, <, <=, >, >=, BETWEEN, IN, IS NULL,
//   LIKE), additive, multiplicative, unary, primary.
class Parser {
 public:
  // Parses one statement; trailing tokens after the statement are an error.
  static Result<std::unique_ptr<SelectStatement>> Parse(
      const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseSelect();
  Result<AstExprPtr> ParseExpr();
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParseComparison();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParseUnary();
  Result<AstExprPtr> ParsePrimary();
  Result<TableRef> ParseTableRef();

  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool Match(TokenType type);
  Status Expect(TokenType type, const char* context);
  Status ErrorAt(const Token& tok, const std::string& message) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sql
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SQL_PARSER_H_
