#ifndef CLOUDVIEWS_SQL_AST_H_
#define CLOUDVIEWS_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace cloudviews {
namespace sql {

// Unresolved SQL AST. Name resolution (columns -> ordinals) happens in the
// plan builder, which turns these nodes into logical-plan expressions.

enum class AstExprKind {
  kLiteral,
  kColumnRef,   // optional table qualifier
  kStar,        // SELECT * (only valid in select lists / COUNT(*))
  kUnary,
  kBinary,
  kFunctionCall,
  kBetween,
  kInList,
  kIsNull,      // IS [NOT] NULL
  kLike,
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table_qualifier;  // may be empty
  std::string column_name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunctionCall
  std::string function_name;  // upper-cased
  bool distinct = false;      // COUNT(DISTINCT x)

  // kIsNull / kLike
  bool negated = false;
  std::string like_pattern;

  std::vector<AstExprPtr> children;

  static AstExprPtr Literal(Value v);
  static AstExprPtr Column(std::string qualifier, std::string name);
  static AstExprPtr Star();
  static AstExprPtr Unary(UnaryOp op, AstExprPtr operand);
  static AstExprPtr Binary(BinaryOp op, AstExprPtr lhs, AstExprPtr rhs);
  static AstExprPtr Call(std::string name, std::vector<AstExprPtr> args);
};

struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // empty when none given
};

enum class JoinKind { kInner, kLeft };

struct TableRef {
  std::string table_name;
  std::string alias;  // empty when none given
};

struct JoinClause {
  JoinKind kind = JoinKind::kInner;
  TableRef table;
  AstExprPtr condition;  // ON expression; may be null for cross join
};

struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

// One SELECT statement (single query block, optionally UNION ALL chained).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;                 // may be null
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;                // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;               // -1 = no limit
  std::unique_ptr<SelectStatement> union_all_next;  // UNION ALL chain
};

}  // namespace sql
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SQL_AST_H_
