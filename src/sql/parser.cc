#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace cloudviews {
namespace sql {

namespace {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::unique_ptr<SelectStatement>> Parser::Parse(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto stmt = parser.ParseSelect();
  if (!stmt.ok()) return stmt.status();
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorAt(parser.Peek(), "unexpected trailing tokens");
  }
  return stmt;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

Token Parser::Advance() {
  Token tok = Peek();
  if (pos_ + 1 < tokens_.size()) pos_ += 1;
  return tok;
}

bool Parser::Match(TokenType type) {
  if (Peek().type == type) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* context) {
  if (Peek().type != type) {
    return ErrorAt(Peek(), std::string("expected ") + TokenTypeName(type) +
                               " in " + context);
  }
  Advance();
  return Status::OK();
}

Status Parser::ErrorAt(const Token& tok, const std::string& message) const {
  return Status::InvalidArgument(message + " (got " +
                                 TokenTypeName(tok.type) +
                                 (tok.text.empty() ? "" : " '" + tok.text + "'") +
                                 " at offset " + std::to_string(tok.position) +
                                 ")");
}

Result<TableRef> Parser::ParseTableRef() {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorAt(Peek(), "expected table name");
  }
  TableRef ref;
  ref.table_name = Advance().text;
  if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  } else if (Match(TokenType::kAs)) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorAt(Peek(), "expected alias after AS");
    }
    ref.alias = Advance().text;
  }
  return ref;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kSelect, "query"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = Match(TokenType::kDistinct);

  // Select list.
  while (true) {
    SelectItem item;
    if (Peek().type == TokenType::kStar) {
      Advance();
      item.expr = AstExpr::Star();
    } else {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
    }
    if (Match(TokenType::kAs)) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorAt(Peek(), "expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      item.alias = Advance().text;
    }
    stmt->select_list.push_back(std::move(item));
    if (!Match(TokenType::kComma)) break;
  }

  CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kFrom, "query"));
  auto from = ParseTableRef();
  if (!from.ok()) return from.status();
  stmt->from = std::move(from).value();

  // Joins.
  while (true) {
    JoinKind kind = JoinKind::kInner;
    if (Match(TokenType::kInner)) {
      CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kJoin, "INNER JOIN"));
    } else if (Match(TokenType::kLeft)) {
      CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kJoin, "LEFT JOIN"));
      kind = JoinKind::kLeft;
    } else if (!Match(TokenType::kJoin)) {
      break;
    }
    JoinClause join;
    join.kind = kind;
    auto table = ParseTableRef();
    if (!table.ok()) return table.status();
    join.table = std::move(table).value();
    if (Match(TokenType::kOn)) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      join.condition = std::move(cond).value();
    }
    stmt->joins.push_back(std::move(join));
  }

  if (Match(TokenType::kWhere)) {
    auto where = ParseExpr();
    if (!where.ok()) return where.status();
    stmt->where = std::move(where).value();
  }

  if (Match(TokenType::kGroup)) {
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kBy, "GROUP BY"));
    while (true) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt->group_by.push_back(std::move(expr).value());
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (Match(TokenType::kHaving)) {
    auto having = ParseExpr();
    if (!having.ok()) return having.status();
    stmt->having = std::move(having).value();
  }

  if (Match(TokenType::kOrder)) {
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kBy, "ORDER BY"));
    while (true) {
      OrderItem item;
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
      if (Match(TokenType::kDesc)) {
        item.ascending = false;
      } else {
        Match(TokenType::kAsc);
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (Match(TokenType::kLimit)) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorAt(Peek(), "expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
  }

  if (Match(TokenType::kUnion)) {
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kAll, "UNION ALL"));
    auto next = ParseSelect();
    if (!next.ok()) return next.status();
    stmt->union_all_next = std::move(next).value();
  }

  return stmt;
}

Result<AstExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<AstExprPtr> Parser::ParseOr() {
  auto lhs = ParseAnd();
  if (!lhs.ok()) return lhs.status();
  AstExprPtr expr = std::move(lhs).value();
  while (Match(TokenType::kOr)) {
    auto rhs = ParseAnd();
    if (!rhs.ok()) return rhs.status();
    expr = AstExpr::Binary(BinaryOp::kOr, std::move(expr),
                           std::move(rhs).value());
  }
  return expr;
}

Result<AstExprPtr> Parser::ParseAnd() {
  auto lhs = ParseNot();
  if (!lhs.ok()) return lhs.status();
  AstExprPtr expr = std::move(lhs).value();
  while (Match(TokenType::kAnd)) {
    auto rhs = ParseNot();
    if (!rhs.ok()) return rhs.status();
    expr = AstExpr::Binary(BinaryOp::kAnd, std::move(expr),
                           std::move(rhs).value());
  }
  return expr;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand.status();
    return AstExpr::Unary(UnaryOp::kNot, std::move(operand).value());
  }
  return ParseComparison();
}

Result<AstExprPtr> Parser::ParseComparison() {
  auto lhs = ParseAdditive();
  if (!lhs.ok()) return lhs.status();
  AstExprPtr expr = std::move(lhs).value();

  // IS [NOT] NULL
  if (Match(TokenType::kIs)) {
    bool negated = Match(TokenType::kNot);
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kNull, "IS NULL"));
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kIsNull;
    e->negated = negated;
    e->children.push_back(std::move(expr));
    return AstExprPtr(std::move(e));
  }

  // [NOT] BETWEEN / IN / LIKE
  bool negated = false;
  if (Peek().type == TokenType::kNot &&
      (Peek(1).type == TokenType::kBetween || Peek(1).type == TokenType::kIn ||
       Peek(1).type == TokenType::kLike)) {
    Advance();
    negated = true;
  }

  if (Match(TokenType::kBetween)) {
    auto lo = ParseAdditive();
    if (!lo.ok()) return lo.status();
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kAnd, "BETWEEN"));
    auto hi = ParseAdditive();
    if (!hi.ok()) return hi.status();
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kBetween;
    e->negated = negated;
    e->children.push_back(std::move(expr));
    e->children.push_back(std::move(lo).value());
    e->children.push_back(std::move(hi).value());
    return AstExprPtr(std::move(e));
  }

  if (Match(TokenType::kIn)) {
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kLParen, "IN list"));
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kInList;
    e->negated = negated;
    e->children.push_back(std::move(expr));
    while (true) {
      auto item = ParseAdditive();
      if (!item.ok()) return item.status();
      e->children.push_back(std::move(item).value());
      if (!Match(TokenType::kComma)) break;
    }
    CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kRParen, "IN list"));
    return AstExprPtr(std::move(e));
  }

  if (Match(TokenType::kLike)) {
    if (Peek().type != TokenType::kStringLiteral) {
      return ErrorAt(Peek(), "expected string pattern after LIKE");
    }
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kLike;
    e->negated = negated;
    e->like_pattern = Advance().text;
    e->children.push_back(std::move(expr));
    return AstExprPtr(std::move(e));
  }

  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return expr;
  }
  Advance();
  auto rhs = ParseAdditive();
  if (!rhs.ok()) return rhs.status();
  return AstExpr::Binary(op, std::move(expr), std::move(rhs).value());
}

Result<AstExprPtr> Parser::ParseAdditive() {
  auto lhs = ParseMultiplicative();
  if (!lhs.ok()) return lhs.status();
  AstExprPtr expr = std::move(lhs).value();
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSubtract;
    } else {
      break;
    }
    Advance();
    auto rhs = ParseMultiplicative();
    if (!rhs.ok()) return rhs.status();
    expr = AstExpr::Binary(op, std::move(expr), std::move(rhs).value());
  }
  return expr;
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  auto lhs = ParseUnary();
  if (!lhs.ok()) return lhs.status();
  AstExprPtr expr = std::move(lhs).value();
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMultiply;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDivide;
    } else if (Peek().type == TokenType::kPercent) {
      op = BinaryOp::kModulo;
    } else {
      break;
    }
    Advance();
    auto rhs = ParseUnary();
    if (!rhs.ok()) return rhs.status();
    expr = AstExpr::Binary(op, std::move(expr), std::move(rhs).value());
  }
  return expr;
}

Result<AstExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    auto operand = ParseUnary();
    if (!operand.ok()) return operand.status();
    return AstExpr::Unary(UnaryOp::kNegate, std::move(operand).value());
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral: {
      Token t = Advance();
      return AstExpr::Literal(Value(t.int_value));
    }
    case TokenType::kDoubleLiteral: {
      Token t = Advance();
      return AstExpr::Literal(Value(t.double_value));
    }
    case TokenType::kStringLiteral: {
      Token t = Advance();
      return AstExpr::Literal(Value(std::move(t.text)));
    }
    case TokenType::kTrue:
      Advance();
      return AstExpr::Literal(Value(true));
    case TokenType::kFalse:
      Advance();
      return AstExpr::Literal(Value(false));
    case TokenType::kNull:
      Advance();
      return AstExpr::Literal(Value::Null());
    case TokenType::kLParen: {
      Advance();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kRParen, "parenthesized expr"));
      return inner;
    }
    case TokenType::kIdentifier: {
      Token name = Advance();
      // Function call?
      if (Peek().type == TokenType::kLParen) {
        Advance();
        auto call = std::make_unique<AstExpr>();
        call->kind = AstExprKind::kFunctionCall;
        call->function_name = ToUpper(name.text);
        if (Match(TokenType::kDistinct)) call->distinct = true;
        if (Peek().type == TokenType::kStar) {
          Advance();
          call->children.push_back(AstExpr::Star());
        } else if (Peek().type != TokenType::kRParen) {
          while (true) {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg.status();
            call->children.push_back(std::move(arg).value());
            if (!Match(TokenType::kComma)) break;
          }
        }
        CLOUDVIEWS_RETURN_NOT_OK(Expect(TokenType::kRParen, "function call"));
        return AstExprPtr(std::move(call));
      }
      // Qualified column?
      if (Peek().type == TokenType::kDot) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorAt(Peek(), "expected column name after '.'");
        }
        Token col = Advance();
        return AstExpr::Column(name.text, col.text);
      }
      return AstExpr::Column("", name.text);
    }
    default:
      return ErrorAt(tok, "expected expression");
  }
}

}  // namespace sql
}  // namespace cloudviews
