#ifndef CLOUDVIEWS_SQL_TOKEN_H_
#define CLOUDVIEWS_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace cloudviews {

enum class TokenType {
  kEnd = 0,
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // Keywords.
  kSelect,
  kFrom,
  kWhere,
  kJoin,
  kInner,
  kLeft,
  kOn,
  kGroup,
  kOrder,
  kBy,
  kHaving,
  kAs,
  kAnd,
  kOr,
  kNot,
  kNull,
  kTrue,
  kFalse,
  kAsc,
  kDesc,
  kLimit,
  kDistinct,
  kUnion,
  kAll,
  kBetween,
  kIn,
  kIs,
  kLike,
  // Punctuation / operators.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // identifier / literal spelling (unquoted)
  int64_t int_value = 0;  // valid when type == kIntLiteral
  double double_value = 0.0;
  size_t position = 0;    // byte offset in the source, for error messages
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_SQL_TOKEN_H_
