#include "sharing/sharing_registry.h"

#include <algorithm>

namespace cloudviews {
namespace sharing {

void SharingRegistry::Admit(int64_t job_id, const Hash128& signature) {
  std::vector<int64_t>& jobs = admitted_[signature];
  if (std::find(jobs.begin(), jobs.end(), job_id) == jobs.end()) {
    jobs.push_back(job_id);
  }
}

size_t SharingRegistry::InFlightJobs(const Hash128& signature) const {
  auto it = admitted_.find(signature);
  return it == admitted_.end() ? 0 : it->second.size();
}

SharedStream* SharingRegistry::CreateStream(const Hash128& signature,
                                            size_t fanout) {
  if (by_signature_.count(signature) != 0) return nullptr;
  streams_.push_back(std::make_unique<SharedStream>(signature, fanout));
  SharedStream* stream = streams_.back().get();
  by_signature_[signature] = stream;
  return stream;
}

SharedStream* SharingRegistry::FindStream(const Hash128& signature) const {
  auto it = by_signature_.find(signature);
  return it == by_signature_.end() ? nullptr : it->second;
}

void SharingRegistry::Clear() {
  admitted_.clear();
  by_signature_.clear();
  streams_.clear();
}

}  // namespace sharing
}  // namespace cloudviews
