#ifndef CLOUDVIEWS_SHARING_SHARING_REGISTRY_H_
#define CLOUDVIEWS_SHARING_SHARING_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "exec/shared_stream.h"

namespace cloudviews {
namespace sharing {

// Aggregate outcome of sharing windows, kept per engine and surfaced through
// the insights report next to the view-reuse savings.
struct SharingStats {
  int64_t windows = 0;            // sharing windows executed
  int64_t streams = 0;            // producer streams launched
  int64_t fanout = 0;             // subscriber scan instances wired up
  int64_t hits = 0;               // subscribers served entirely from a stream
  int64_t detaches = 0;           // subscribers that fell back mid-stream
  int64_t producer_aborts = 0;    // streams that died before completing
  int64_t batches_produced = 0;   // batches published across all streams
  uint64_t rows_shared = 0;       // rows published across all streams
  uint64_t bytes_shared = 0;      // bytes published across all streams
  // CPU cost the producer pipelines spent computing the shared subtrees
  // (each counted once per window; subscribers are only charged stream
  // reads). Lets a total-cycles comparison against unshared execution
  // include the producers' side of the ledger.
  double producer_cpu_cost = 0.0;
  // Optimizer-estimated latency cost of the subscriber subtrees that were
  // answered from a stream instead of recomputed (the sharing analogue of
  // per-hit view savings).
  double saved_cost = 0.0;
};

// Bookkeeping for one sharing window: which signatures the admitted jobs
// cover (the admission index) and the producer streams launched for the
// signatures elected for sharing.
//
// Threading contract: admission and stream creation happen serially on the
// engine driver before any producer thread starts; during the concurrent
// phase the registry is frozen and FindStream() is a read of immutable
// state. Clear() must not be called until every stream thread has joined.
class SharingRegistry : public StreamDirectory {
 public:
  SharingRegistry() = default;

  SharingRegistry(const SharingRegistry&) = delete;
  SharingRegistry& operator=(const SharingRegistry&) = delete;

  // Records that an admitted job's plan covers `signature` (strict). Called
  // once per eligible subtree instance at admission.
  void Admit(int64_t job_id, const Hash128& signature);

  // Number of distinct in-flight jobs covering `signature`.
  size_t InFlightJobs(const Hash128& signature) const;

  // Creates (and owns) the stream for `signature`; `fanout` is the number of
  // subscriber scan instances that will be wired to it. Returns null if a
  // stream for the signature already exists.
  SharedStream* CreateStream(const Hash128& signature, size_t fanout);

  SharedStream* FindStream(const Hash128& signature) const override;

  const std::vector<std::unique_ptr<SharedStream>>& streams() const {
    return streams_;
  }

  // Resets admissions and streams for the next window.
  void Clear();

 private:
  std::unordered_map<Hash128, std::vector<int64_t>, Hash128Hasher> admitted_;
  std::vector<std::unique_ptr<SharedStream>> streams_;
  std::unordered_map<Hash128, SharedStream*, Hash128Hasher> by_signature_;
};

}  // namespace sharing
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SHARING_SHARING_REGISTRY_H_
