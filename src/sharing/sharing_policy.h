#ifndef CLOUDVIEWS_SHARING_SHARING_POLICY_H_
#define CLOUDVIEWS_SHARING_SHARING_POLICY_H_

#include <cstddef>
#include <unordered_map>

#include "common/hash.h"
#include "obs/provenance.h"

namespace cloudviews {
namespace sharing {

// What to do with a subexpression several in-flight queries cover.
enum class ShareMode {
  // Leave every plan untouched: the existing spool path (if any) may still
  // materialize the result for *later* queries, but in-flight duplicates
  // each compute it themselves.
  kMaterializeOnly,
  // Elect a producer and stream its batches to the in-flight duplicates,
  // without materializing a view (any spool in the elected subtree is
  // stripped from the producer pipeline).
  kShareNow,
  // Share in-flight AND keep the spool inside the producer pipeline, so the
  // single shared execution doubles as the view writer for later queries.
  kBoth,
};

const char* ShareModeName(ShareMode mode);

struct SharingPolicyOptions {
  // In-flight jobs that must cover a signature before a producer is elected.
  size_t min_fanout = 2;
  // Smallest subtree (logical operator count) worth streaming; below this
  // the handoff overhead beats recomputation.
  size_t min_subtree_size = 2;
  // A spool is kept in the producer pipeline (kBoth) unless the provenance
  // ledger shows the view's historical net utility below this threshold —
  // then sharing serves the in-flight demand and the wasteful
  // materialization is skipped (kShareNow).
  double min_net_utility = 0.0;
};

// Chooses per-signature between share-now, materialize-for-later, and both,
// from the in-flight fan-out count and the provenance ledger's per-view
// net-utility signal. Deterministic: decisions depend only on the loaded
// ledger snapshot and the explicit inputs.
class SharingPolicy {
 public:
  explicit SharingPolicy(SharingPolicyOptions options = {})
      : options_(options) {}

  // Snapshots per-view net utilities once per window; a disabled or empty
  // ledger yields no signal (every spool is then presumed worth keeping).
  void LoadLedger(const obs::ProvenanceLedger& ledger, double now);

  ShareMode Decide(const Hash128& strict, size_t fanout, size_t subtree_size,
                   bool has_spool) const;

  // The loaded ledger snapshot's net-utility signal for `strict` — the
  // number Decide consulted. Zero when the ledger carried no signal (the
  // same neutral default Decide assumes). Exposed so a recorded sharing
  // verdict can carry its input.
  double NetUtilityFor(const Hash128& strict) const {
    auto it = net_utility_.find(strict);
    return it == net_utility_.end() ? 0.0 : it->second;
  }

  const SharingPolicyOptions& options() const { return options_; }

 private:
  SharingPolicyOptions options_;
  std::unordered_map<Hash128, double, Hash128Hasher> net_utility_;
};

}  // namespace sharing
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SHARING_SHARING_POLICY_H_
