#ifndef CLOUDVIEWS_SHARING_PRODUCER_H_
#define CLOUDVIEWS_SHARING_PRODUCER_H_

#include <cstdint>

#include "common/status.h"
#include "exec/executor.h"
#include "exec/shared_stream.h"
#include "plan/logical_plan.h"

namespace cloudviews {
namespace sharing {

// What the elected producer pipeline did, for the window's accounting.
struct ProducerStats {
  int64_t batches = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double cpu_cost = 0.0;
};

// Executes `plan` (the spool-free clone of the elected shared subtree) once
// on the calling thread, publishing every non-empty batch to `stream`.
// Drives stream lifecycle to a terminal state no matter what: Complete() on
// a clean drain, Abort(cause) on any failure — including an injected
// sharing.producer_abort fault — so subscribers always wake up and either
// finish from the log or detach to their fallbacks. Never touches the view
// store, ledger, or spool hooks: `context` must carry null spool callbacks,
// and the plan contains no spools by construction.
//
// Returns the abort cause on failure (already recorded on the stream); the
// caller only logs it — subscribers recover independently.
Status RunProducer(const ExecContext& context, const LogicalOpPtr& plan,
                   SharedStream* stream, ProducerStats* stats);

}  // namespace sharing
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SHARING_PRODUCER_H_
