#include "sharing/sharing_rewrite.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "optimizer/cost_model.h"

namespace cloudviews {
namespace sharing {

namespace {

struct Instance {
  size_t job = 0;
  const LogicalOp* node = nullptr;
};

struct Candidate {
  Hash128 strict;
  Hash128 recurring;
  size_t subtree_size = 0;
  std::vector<Instance> instances;  // job order, post-order within a job
};

// Parent pointers for every node of one plan (the root has none).
void MapParents(LogicalOp* node,
                std::unordered_map<const LogicalOp*, LogicalOp*>* parents) {
  for (const LogicalOpPtr& child : node->children) {
    (*parents)[child.get()] = node;
    MapParents(child.get(), parents);
  }
}

void CollectNodes(const LogicalOp* node,
                  std::unordered_set<const LogicalOp*>* out) {
  out->insert(node);
  for (const LogicalOpPtr& child : node->children) {
    CollectNodes(child.get(), out);
  }
}

bool Overlaps(const LogicalOp* node,
              const std::unordered_set<const LogicalOp*>& covered) {
  if (covered.count(node) != 0) return true;
  for (const LogicalOpPtr& child : node->children) {
    if (Overlaps(child.get(), covered)) return true;
  }
  return false;
}

void CollectSpoolSignatures(const LogicalOp* node,
                            std::vector<Hash128>* out) {
  if (node->kind == LogicalOpKind::kSpool) {
    out->push_back(node->view_signature);
  }
  for (const LogicalOpPtr& child : node->children) {
    CollectSpoolSignatures(child.get(), out);
  }
}

// Removes every spool from an already-cloned subtree (a spool forwards its
// single child unchanged, so this never alters the rows produced).
LogicalOpPtr StripSpools(LogicalOpPtr node) {
  while (node->kind == LogicalOpKind::kSpool) {
    node = node->children[0];
  }
  for (LogicalOpPtr& child : node->children) {
    child = StripSpools(std::move(child));
  }
  return node;
}

// The SharedScan replacing `instance`, carrying a spool-free fallback clone.
LogicalOpPtr MakeSharedScan(const Candidate& candidate,
                            const LogicalOp& instance) {
  LogicalOpPtr shared = LogicalOp::SharedScan(
      candidate.strict, candidate.recurring, instance.output_schema,
      StripSpools(instance.Clone()));
  shared->estimated_rows = instance.estimated_rows;
  shared->estimated_bytes = instance.estimated_bytes;
  shared->stats_from_view = true;  // inherited estimates are authoritative
  return shared;
}

}  // namespace

RewriteResult RewriteForSharing(
    const std::vector<LogicalOpPtr*>& plans,
    const SignatureComputer& signatures, const SharingPolicy& policy,
    const std::vector<obs::DecisionSink>* decision_sinks) {
  RewriteResult result;

  // Enumerate eligible subtree instances across the window's plans.
  std::vector<Hash128> order;  // first-seen candidate order
  std::unordered_map<Hash128, Candidate, Hash128Hasher> candidates;
  std::vector<std::unordered_map<const LogicalOp*, LogicalOp*>> parents(
      plans.size());
  for (size_t job = 0; job < plans.size(); ++job) {
    MapParents(plans[job]->get(), &parents[job]);
    for (const NodeSignature& sig : signatures.ComputeAll(**plans[job])) {
      if (!sig.eligible ||
          sig.subtree_size < policy.options().min_subtree_size) {
        continue;
      }
      auto [it, inserted] = candidates.try_emplace(sig.strict);
      Candidate& candidate = it->second;
      if (inserted) {
        candidate.strict = sig.strict;
        candidate.recurring = sig.recurring;
        candidate.subtree_size = sig.subtree_size;
        order.push_back(sig.strict);
      }
      candidate.instances.push_back({job, sig.node});
    }
  }

  // Largest subtrees first: a bigger shared region subsumes the smaller
  // duplicates inside it. Hex tie-break keeps the pass deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [&](const Hash128& a, const Hash128& b) {
                     const Candidate& ca = candidates.at(a);
                     const Candidate& cb = candidates.at(b);
                     if (ca.subtree_size != cb.subtree_size) {
                       return ca.subtree_size > cb.subtree_size;
                     }
                     return a.ToHex() < b.ToHex();
                   });

  // Claim pass: pick the instances to share, never overlapping a region
  // already claimed by a larger signature. No plan is mutated yet, so every
  // instance pointer collected above stays valid for the conflict walks.
  struct Claim {
    const Candidate* candidate = nullptr;
    std::vector<Instance> instances;
    ShareMode mode = ShareMode::kShareNow;
  };
  std::vector<Claim> claims;
  std::vector<std::unordered_set<const LogicalOp*>> covered(plans.size());
  CostModel cost_model;
  for (const Hash128& strict : order) {
    const Candidate& candidate = candidates.at(strict);
    Claim claim;
    claim.candidate = &candidate;
    bool has_spool = false;
    for (const Instance& instance : candidate.instances) {
      if (Overlaps(instance.node, covered[instance.job])) continue;
      const LogicalOp* parent = nullptr;
      auto pit = parents[instance.job].find(instance.node);
      if (pit != parents[instance.job].end()) parent = pit->second;
      if (parent != nullptr && parent->kind == LogicalOpKind::kSpool &&
          parent->view_signature == strict) {
        has_spool = true;
      }
      claim.instances.push_back(instance);
    }
    std::unordered_set<size_t> jobs;
    for (const Instance& instance : claim.instances) jobs.insert(instance.job);
    claim.mode = policy.Decide(strict, jobs.size(), candidate.subtree_size,
                               has_spool);
    // Record the verdict into every covered job's trace (ascending job
    // order for determinism) when >= 2 jobs actually shared the signature —
    // single-job candidates are not sharing decisions.
    if (decision_sinks != nullptr && jobs.size() >= 2) {
      std::vector<size_t> covered(jobs.begin(), jobs.end());
      std::sort(covered.begin(), covered.end());
      for (size_t job : covered) {
        const obs::DecisionSink& sink = (*decision_sinks)[job];
        if (!sink.Active()) continue;
        obs::DecisionEvent event;
        event.stage = obs::DecisionStage::kSharing;
        event.reason =
            claim.mode == ShareMode::kShareNow
                ? obs::DecisionReason::kShareNow
                : claim.mode == ShareMode::kBoth
                      ? obs::DecisionReason::kShareBoth
                      : obs::DecisionReason::kShareMaterializeOnly;
        event.node_strict = strict;
        event.candidate_strict = strict;
        event.fanout = static_cast<int64_t>(jobs.size());
        event.subtree_size = static_cast<int64_t>(candidate.subtree_size);
        event.net_utility = policy.NetUtilityFor(strict);
        sink.Record(std::move(event));
      }
    }
    if (claim.mode == ShareMode::kMaterializeOnly) continue;
    for (const Instance& instance : claim.instances) {
      CollectNodes(instance.node, &covered[instance.job]);
    }
    claims.push_back(std::move(claim));
  }

  // Replacement pass: swap every claimed instance for a SharedScan and clone
  // the elected instance (spool-free) as the producer pipeline.
  for (const Claim& claim : claims) {
    const Candidate& candidate = *claim.candidate;
    const Instance& elected = claim.instances.front();

    StreamPlan stream;
    stream.strict = candidate.strict;
    stream.recurring = candidate.recurring;
    stream.elected_job = elected.job;
    stream.producer_plan = StripSpools(elected.node->Clone());
    stream.fanout = claim.instances.size();
    stream.mode = claim.mode;
    stream.saved_cost = cost_model.SubtreeCost(*elected.node) *
                        static_cast<double>(claim.instances.size() - 1);

    for (const Instance& instance : claim.instances) {
      // Spools nested inside the replaced region have no executor left to
      // run them; report them so the engine withdraws the materializations.
      std::vector<Hash128> nested;
      CollectSpoolSignatures(instance.node, &nested);
      for (const Hash128& sig : nested) {
        result.dropped_spools.emplace_back(instance.job, sig);
      }

      LogicalOpPtr shared = MakeSharedScan(candidate, *instance.node);
      LogicalOp* parent = nullptr;
      auto pit = parents[instance.job].find(instance.node);
      if (pit != parents[instance.job].end()) parent = pit->second;

      const LogicalOp* replace_target = instance.node;
      if (parent != nullptr && parent->kind == LogicalOpKind::kSpool &&
          parent->view_signature == candidate.strict &&
          claim.mode == ShareMode::kShareNow) {
        // Policy says the view is not worth rebuilding: drop the spool and
        // subscribe its parent directly.
        result.dropped_spools.emplace_back(instance.job,
                                           parent->view_signature);
        replace_target = parent;
        auto git = parents[instance.job].find(parent);
        parent = git == parents[instance.job].end() ? nullptr : git->second;
      }
      if (parent == nullptr) {
        *plans[instance.job] = std::move(shared);
        continue;
      }
      for (LogicalOpPtr& child :
           const_cast<LogicalOp*>(parent)->children) {
        if (child.get() == replace_target) {
          child = std::move(shared);
          break;
        }
      }
    }
    result.streams.push_back(std::move(stream));
  }
  return result;
}

}  // namespace sharing
}  // namespace cloudviews
