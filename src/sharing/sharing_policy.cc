#include "sharing/sharing_policy.h"

namespace cloudviews {
namespace sharing {

const char* ShareModeName(ShareMode mode) {
  switch (mode) {
    case ShareMode::kMaterializeOnly:
      return "MATERIALIZE_ONLY";
    case ShareMode::kShareNow:
      return "SHARE_NOW";
    case ShareMode::kBoth:
      return "BOTH";
  }
  return "UNKNOWN";
}

void SharingPolicy::LoadLedger(const obs::ProvenanceLedger& ledger,
                               double now) {
  net_utility_.clear();
  if (!obs::ProvenanceLedger::Enabled()) return;
  for (const obs::ViewStream& stream : ledger.Streams()) {
    obs::ViewAggregates agg = obs::ProvenanceLedger::Aggregate(
        stream, now, obs::kDefaultStorageRentPerByteSecond);
    // Only a view that actually sealed has a track record to judge; streams
    // that never produced a view carry no utility signal.
    if (agg.sealed) net_utility_[stream.strict] = agg.NetUtility();
  }
}

ShareMode SharingPolicy::Decide(const Hash128& strict, size_t fanout,
                                size_t subtree_size, bool has_spool) const {
  if (fanout < options_.min_fanout ||
      subtree_size < options_.min_subtree_size) {
    return ShareMode::kMaterializeOnly;
  }
  if (!has_spool) return ShareMode::kShareNow;
  auto it = net_utility_.find(strict);
  if (it != net_utility_.end() && it->second < options_.min_net_utility) {
    // The ledger says this view historically cost more than it saved:
    // serve the in-flight demand from the stream and skip rebuilding it.
    return ShareMode::kShareNow;
  }
  return ShareMode::kBoth;
}

}  // namespace sharing
}  // namespace cloudviews
