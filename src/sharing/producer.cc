#include "sharing/producer.h"

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "exec/batch_op.h"
#include "exec/physical_verifier.h"
#include "fault/fault.h"
#include "fault/fault_sites.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "verify/verify.h"

namespace cloudviews {
namespace sharing {

namespace {

// The drain loop proper; the wrapper below maps its Status onto the stream's
// terminal transition.
Status ProduceBatches(const ExecContext& context, const LogicalOpPtr& plan,
                      SharedStream* stream, ProducerStats* stats) {
  ParallelRuntime runtime;
  runtime.dop = context.dop > 0 ? context.dop : ThreadPool::DefaultDop();
  runtime.morsel_rows = context.morsel_rows > 0 ? context.morsel_rows : 1;
  if (runtime.dop > 1) {
    runtime.pool =
        context.pool != nullptr ? context.pool : &ThreadPool::Shared();
  }

  std::vector<PhysicalOp*> registry;
  auto built =
      BuildBatchPlan(context, runtime, context.batch_rows, plan, &registry);
  if (!built.ok()) return built.status();
  BatchOpPtr root = std::move(built).value();

  if constexpr (verify::RuntimeChecksEnabled()) {
    CLOUDVIEWS_RETURN_NOT_OK(verify::PhysicalVerifier::VerifyWiring(
        *plan, registry, runtime.dop, runtime.morsel_rows));
  }

  CLOUDVIEWS_RETURN_NOT_OK(root->Open());
  Status drain;
  while (true) {
    ColumnBatch batch;
    bool done = false;
    drain = root->NextBatch(&batch, &done);
    if (!drain.ok() || done) break;
    if constexpr (verify::RuntimeChecksEnabled()) {
      drain = verify::PhysicalVerifier::VerifyBatch(*plan, batch);
      if (!drain.ok()) break;
    }
    if (batch.num_rows == 0) continue;
    // The producer is the window's single point of failure by design:
    // chaos runs kill it here and expect every subscriber to fall back.
    drain = fault::Inject(fault::sites::kSharingProducerAbort);
    if (!drain.ok()) break;
    drain = stream->Publish(std::move(batch));
    if (!drain.ok()) break;
    stats->batches += 1;
  }
  root->Close();
  CLOUDVIEWS_RETURN_NOT_OK(drain);
  if constexpr (verify::RuntimeChecksEnabled()) {
    CLOUDVIEWS_RETURN_NOT_OK(
        verify::PhysicalVerifier::VerifyPostRun(*plan, registry));
  }
  for (PhysicalOp* op : registry) {
    op->ExportStats([&](const LogicalOp*, const OperatorStats& op_stats) {
      stats->cpu_cost += op_stats.cpu_cost;
    });
  }
  return Status::OK();
}

}  // namespace

Status RunProducer(const ExecContext& context, const LogicalOpPtr& plan,
                   SharedStream* stream, ProducerStats* stats) {
  Status status = ProduceBatches(context, plan, stream, stats);
  stats->rows = stream->rows_published();
  stats->bytes = stream->bytes_published();
  if (status.ok()) {
    stream->Complete();
    return status;
  }
  static obs::Counter& aborts = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kSharingProducerAborts);
  aborts.Increment();
  stream->Abort(status);
  return status;
}

}  // namespace sharing
}  // namespace cloudviews
