#ifndef CLOUDVIEWS_SHARING_SHARING_REWRITE_H_
#define CLOUDVIEWS_SHARING_SHARING_REWRITE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "obs/decision.h"
#include "plan/logical_plan.h"
#include "plan/signature.h"
#include "sharing/sharing_policy.h"

namespace cloudviews {
namespace sharing {

// One producer stream the rewrite decided to launch.
struct StreamPlan {
  Hash128 strict;
  Hash128 recurring;
  // Spool-free deep clone of the elected instance's subtree; executed once
  // on a stream thread, publishing batches to every subscriber.
  LogicalOpPtr producer_plan;
  // Index (into the window's job list) of the job whose instance was
  // elected as the producer source.
  size_t elected_job = 0;
  // SharedScan instances wired to this stream across all jobs.
  size_t fanout = 0;
  ShareMode mode = ShareMode::kShareNow;
  // Optimizer-estimated cost the subscribers avoid recomputing: the shared
  // subtree costs SubtreeCost once (the producer) instead of `fanout` times.
  double saved_cost = 0.0;
};

struct RewriteResult {
  std::vector<StreamPlan> streams;
  // Spool materializations that disappeared from a job's plan — nested
  // inside a replaced subtree, or stripped by a kShareNow decision. Nothing
  // will seal these; the engine must withdraw them (AbandonJob) so the
  // creation locks release and the half-registered entries drop.
  std::vector<std::pair<size_t, Hash128>> dropped_spools;
};

// The shared-subexpression scheduler's plan rewrite. Scans the optimized
// plans of one window's jobs for eligible subtrees whose strict signature is
// covered by >= 2 in-flight jobs, elects one producer per signature
// (largest subtrees first; overlapping or nested regions are never shared
// twice), and replaces every instance with a SharedScan subscribed to the
// producer's stream. Each SharedScan carries a spool-free fallback clone of
// the subtree it replaced, so a subscriber can always detach and answer the
// query alone.
//
// Spools interact per the policy decision:
//  - kBoth: a spool directly above an instance stays in its job's plan, fed
//    by the SharedScan — the single shared execution doubles as the view
//    writer, on the lock-holder's own driver thread;
//  - kShareNow: that spool is stripped (and reported in dropped_spools);
//  - kMaterializeOnly: the signature is not shared at all.
// Spools nested strictly inside a replaced subtree always drop (the
// producer clone is spool-free), and are reported likewise.
//
// Deterministic: iteration follows job order and post-order signature
// enumeration; ties in candidate ordering break on the signature hex.
//
// `decision_sinks` (optional; parallel to `plans`) receives one kSharing
// DecisionEvent per covered job for every policy verdict on a signature at
// least two jobs cover, carrying the fan-out / subtree-size / net-utility
// inputs the policy consulted. Recording never alters the rewrite.
RewriteResult RewriteForSharing(
    const std::vector<LogicalOpPtr*>& plans,
    const SignatureComputer& signatures, const SharingPolicy& policy,
    const std::vector<obs::DecisionSink>* decision_sinks = nullptr);

}  // namespace sharing
}  // namespace cloudviews

#endif  // CLOUDVIEWS_SHARING_SHARING_REWRITE_H_
