#ifndef CLOUDVIEWS_FAULT_FAULT_H_
#define CLOUDVIEWS_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace fault {

// Deterministic fault injection for the reuse stack. A FaultPlan maps site
// names (see fault_sites.h) to firing rules; the armed plan is consulted at
// every fault::Inject(site) call threaded through the engine. All
// randomness flows through the plan's explicitly seeded Random, so a given
// (plan, seed, workload) triple fails in exactly the same places run after
// run — chaos tests are ordinary deterministic tests.
//
// Disabled cost: Inject() is one relaxed atomic load and a predicted
// branch (the same pattern as obs::Tracer::Enabled), cheap enough to leave
// compiled into every hot path.
//
// Arming: programmatic (FaultInjector::Global().Arm(plan)) or via the
// CLOUDVIEWS_FAULTS environment variable, parsed once at process start:
//
//   CLOUDVIEWS_FAULTS="exec.spool.write=nth:2;storage.view.read=p:0.05:corruption"
//   CLOUDVIEWS_FAULT_SEED=3
//
// Entries are `site=nth:<k>[:<code>]` (fire on exactly the k-th hit) or
// `site=p:<prob>[:<code>]` (fire each hit with probability <prob>), joined
// with ';'. <code> is one of: internal (default), corruption, aborted,
// notfound, resource_exhausted.

// How one site fails. Exactly one of `probability` / `nth_hit` is active:
// nth_hit > 0 wins and fires exactly once, on that (1-based) hit.
struct FaultRule {
  double probability = 0.0;
  int64_t nth_hit = 0;
  StatusCode code = StatusCode::kInternal;
};

struct FaultPlan {
  uint64_t seed = 42;
  std::map<std::string, FaultRule> rules;

  bool empty() const { return rules.empty(); }

  // Parses the CLOUDVIEWS_FAULTS spec format documented above.
  static Result<FaultPlan> Parse(const std::string& spec);

  // Round-trips through Parse (modulo seed, which travels separately).
  std::string ToString() const;
};

// Per-site counters, observable by tests.
struct SiteStats {
  uint64_t hits = 0;
  uint64_t fired = 0;
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // Hot-path gate: false whenever no plan is armed.
  static bool Enabled() { return armed_.load(std::memory_order_relaxed); }

  // Installs `plan` and resets all per-site counters and the RNG stream.
  // An empty plan disarms.
  void Arm(FaultPlan plan) EXCLUDES(mu_);
  void Disarm() EXCLUDES(mu_);

  // Arms from CLOUDVIEWS_FAULTS / CLOUDVIEWS_FAULT_SEED if set (called once
  // automatically at process start). Returns InvalidArgument on a malformed
  // spec, leaving the injector disarmed.
  Status ArmFromEnv() EXCLUDES(mu_);

  // Slow path behind Inject(); takes the registry lock.
  Status InjectSlow(const char* site) EXCLUDES(mu_);

  SiteStats stats(const std::string& site) const EXCLUDES(mu_);
  uint64_t total_fired() const EXCLUDES(mu_);
  FaultPlan plan() const EXCLUDES(mu_);

 private:
  FaultInjector() = default;

  // atomic[relaxed]: single-flag arm gate, same discipline as
  // Tracer::enabled_; the armed plan itself is read under mu_.
  static std::atomic<bool> armed_;

  mutable Mutex mu_;
  FaultPlan plan_ GUARDED_BY(mu_);
  std::unique_ptr<Random> rng_ GUARDED_BY(mu_);
  std::map<std::string, SiteStats> stats_ GUARDED_BY(mu_);
};

// The injection point. Returns OK (and stays off every profile) unless a
// plan is armed; an armed plan may return the rule's error Status, which
// the surrounding code must degrade from gracefully.
inline Status Inject(const char* site) {
  if (!FaultInjector::Enabled()) return Status::OK();
  return FaultInjector::Global().InjectSlow(site);
}

}  // namespace fault
}  // namespace cloudviews

#endif  // CLOUDVIEWS_FAULT_FAULT_H_
