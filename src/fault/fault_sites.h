#ifndef CLOUDVIEWS_FAULT_FAULT_SITES_H_
#define CLOUDVIEWS_FAULT_FAULT_SITES_H_

namespace cloudviews {
namespace fault {
namespace sites {

// Central registry of every fault-injection site threaded through the
// engine. A site names one place where production infrastructure can fail:
// the spool's write path, the seal handshake, container preemption, view
// storage reads, cluster nodes, and repository I/O.
//
// Rules (enforced by tools/lint.py, rule `fault-site`):
//   - every fault::Inject(...) call site must name one of these constants
//     (never a string literal), so the set below is the complete failure
//     surface of the engine;
//   - each constant is injected at exactly one call site (a duplicate means
//     copy-paste drift; an uninjected constant is a dead site).
//
// Naming follows the metrics convention: `subsystem.object.event`.

// A spool fails while appending a row to its side table (disk-full /
// write-error mid-materialization). The spool aborts cleanly: partial
// output is dropped, the signature is never sealed, rows keep flowing.
inline constexpr char kSpoolWrite[] = "exec.spool.write";

// The seal handshake itself fails after a fully written spool (the job
// manager cannot publish the view). The materializing entry is withdrawn
// and the creation lock released.
inline constexpr char kSpoolSeal[] = "exec.spool.seal";

// A morsel task is preempted before it runs (container eviction). The
// scheduler retries the same morsel with bounded attempts.
inline constexpr char kMorselPreempt[] = "exec.morsel.preempt";

// Reading a materialized view returns corrupt bytes (bit rot / truncated
// file). Validation quarantines the view and the reader falls back to the
// base-scan plan.
inline constexpr char kViewRead[] = "storage.view.read";

// A cluster node dies before the job's containers start; the simulator
// retries placement with exponential backoff and charges re-executed work.
inline constexpr char kNodeFail[] = "cluster.node.fail";

// A straggler node stretches the job's critical path without failing it.
inline constexpr char kNodeStraggler[] = "cluster.node.straggler";

// Workload-repository snapshot reads fail transiently (remote store
// timeout); bounded retries before surfacing the error.
inline constexpr char kRepoRead[] = "core.repository.read";

// Workload-repository snapshot writes fail transiently.
inline constexpr char kRepoWrite[] = "core.repository.write";

// A shared-subexpression producer pipeline dies mid-stream (container
// eviction of the elected producer). The stream is aborted; every
// subscriber detaches and re-executes its fallback plan independently.
inline constexpr char kSharingProducerAbort[] = "sharing.producer_abort";

// A subscriber times out waiting for the producer's next batch (producer
// stalled or descheduled). The subscriber detaches and re-executes its
// fallback plan, skipping rows already consumed from the stream.
inline constexpr char kSharingSubscriberTimeout[] = "sharing.subscriber_timeout";

}  // namespace sites

// Every registered site, for tooling (lint cross-checks this list against
// the constants above and the Inject call sites) and for programmatic
// sweeps over the whole failure surface.
inline constexpr const char* kAllSites[] = {
    sites::kSpoolWrite,   sites::kSpoolSeal, sites::kMorselPreempt,
    sites::kViewRead,     sites::kNodeFail,  sites::kNodeStraggler,
    sites::kRepoRead,     sites::kRepoWrite, sites::kSharingProducerAbort,
    sites::kSharingSubscriberTimeout,
};

}  // namespace fault
}  // namespace cloudviews

#endif  // CLOUDVIEWS_FAULT_FAULT_SITES_H_
