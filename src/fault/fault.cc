#include "fault/fault.h"

#include <cstdlib>
#include <vector>

#include "fault/fault_sites.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace fault {

namespace {

const char* CodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kNotFound:
      return "notfound";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    default:
      return "internal";
  }
}

bool ParseCodeToken(const std::string& token, StatusCode* out) {
  if (token == "internal") {
    *out = StatusCode::kInternal;
  } else if (token == "corruption") {
    *out = StatusCode::kCorruption;
  } else if (token == "aborted") {
    *out = StatusCode::kAborted;
  } else if (token == "notfound") {
    *out = StatusCode::kNotFound;
  } else if (token == "resource_exhausted") {
    *out = StatusCode::kResourceExhausted;
  } else {
    return false;
  }
  return true;
}

bool IsRegisteredSite(const std::string& site) {
  for (const char* known : kAllSites) {
    if (site == known) return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

// One-time environment arming at library load, before main() runs; keeps
// Inject() a single relaxed load when CLOUDVIEWS_FAULTS is unset.
[[maybe_unused]] const bool kEnvArmed = [] {
  Status st = FaultInjector::Global().ArmFromEnv();
  if (!st.ok()) {
    obs::LogError("fault", "env_parse_failed", {{"status", st.ToString()}});
  }
  return st.ok();
}();

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : Split(spec, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault entry missing '=': " + entry);
    }
    std::string site = entry.substr(0, eq);
    if (!IsRegisteredSite(site)) {
      return Status::InvalidArgument("unknown fault site: " + site);
    }
    std::vector<std::string> parts = Split(entry.substr(eq + 1), ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("fault rule must be mode:value[:code]: " +
                                     entry);
    }
    FaultRule rule;
    char* end = nullptr;
    if (parts[0] == "nth") {
      rule.nth_hit = std::strtoll(parts[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || rule.nth_hit < 1) {
        return Status::InvalidArgument("bad nth value: " + entry);
      }
    } else if (parts[0] == "p") {
      rule.probability = std::strtod(parts[1].c_str(), &end);
      if (end == nullptr || *end != '\0' || rule.probability <= 0.0 ||
          rule.probability > 1.0) {
        return Status::InvalidArgument("bad probability: " + entry);
      }
    } else {
      return Status::InvalidArgument("fault mode must be nth or p: " + entry);
    }
    if (parts.size() == 3 && !ParseCodeToken(parts[2], &rule.code)) {
      return Status::InvalidArgument("unknown status code token: " + entry);
    }
    plan.rules[site] = rule;
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const auto& [site, rule] : rules) {
    if (!out.empty()) out += ';';
    out += site;
    if (rule.nth_hit > 0) {
      out += "=nth:" + std::to_string(rule.nth_hit);
    } else {
      out += "=p:" + std::to_string(rule.probability);
    }
    out += ':';
    out += CodeToken(rule.code);
  }
  return out;
}

FaultInjector& FaultInjector::Global() {
  // Intentional leak: process-lifetime singleton, never destroyed so
  // injection sites reached from static destructors stay safe.
  // lint:allow-new
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultPlan plan) {
  MutexLock lock(mu_);
  plan_ = std::move(plan);
  rng_ = std::make_unique<Random>(plan_.seed);
  stats_.clear();
  armed_.store(!plan_.empty(), std::memory_order_relaxed);
  if (!plan_.empty()) {
    obs::LogInfo("fault", "armed",
                 {{"plan", plan_.ToString()}, {"seed", plan_.seed}});
  }
}

void FaultInjector::Disarm() { Arm(FaultPlan{}); }

Status FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("CLOUDVIEWS_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  auto plan = FaultPlan::Parse(spec);
  if (!plan.ok()) return plan.status();
  if (const char* seed = std::getenv("CLOUDVIEWS_FAULT_SEED")) {
    plan->seed = std::strtoull(seed, nullptr, 10);
  }
  Arm(std::move(plan).value());
  return Status::OK();
}

Status FaultInjector::InjectSlow(const char* site) {
  MutexLock lock(mu_);
  if (plan_.empty()) return Status::OK();
  SiteStats& stats = stats_[site];
  stats.hits += 1;
  auto it = plan_.rules.find(site);
  if (it == plan_.rules.end()) return Status::OK();
  const FaultRule& rule = it->second;
  bool fire = false;
  if (rule.nth_hit > 0) {
    fire = stats.hits == static_cast<uint64_t>(rule.nth_hit);
  } else if (rule.probability > 0.0) {
    fire = rng_->Bernoulli(rule.probability);
  }
  if (!fire) return Status::OK();
  stats.fired += 1;
  static obs::Counter& injected = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kFaultsInjected);
  injected.Increment();
  obs::LogWarn("fault", "injected",
               {{"site", site}, {"hit", stats.hits}});
  return Status(rule.code, std::string("injected fault at ") + site);
}

SiteStats FaultInjector::stats(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = stats_.find(site);
  return it == stats_.end() ? SiteStats{} : it->second;
}

uint64_t FaultInjector::total_fired() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [site, stats] : stats_) total += stats.fired;
  return total;
}

FaultPlan FaultInjector::plan() const {
  MutexLock lock(mu_);
  return plan_;
}

}  // namespace fault
}  // namespace cloudviews
