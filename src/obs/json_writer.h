#ifndef CLOUDVIEWS_OBS_JSON_WRITER_H_
#define CLOUDVIEWS_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cloudviews {
namespace obs {

// Minimal streaming JSON emitter shared by the trace/metrics exporters, the
// per-query profile reports, and the bench harnesses. Handles comma
// placement and string escaping; the caller is responsible for balanced
// Begin/End calls.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits `"key":` inside an object. Follow with exactly one value call.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);  // non-finite values emit null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-rendered JSON verbatim (e.g. a nested object built earlier).
  JsonWriter& RawValue(std::string_view json);

  // Convenience: Key(key) followed by the value.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, const char* value);
  JsonWriter& Field(std::string_view key, int value);
  JsonWriter& Field(std::string_view key, int64_t value);
  JsonWriter& Field(std::string_view key, uint64_t value);
  JsonWriter& Field(std::string_view key, double value);
  JsonWriter& Field(std::string_view key, bool value);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // JSON string-escapes `raw` (quotes, backslashes, control characters).
  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until its first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_JSON_WRITER_H_
