#include "obs/log.h"

#include <cstdio>

#include "common/sim_clock.h"
#include "obs/trace.h"

namespace cloudviews {
namespace obs {

namespace {

// Quotes a value when it contains characters that would break key=value
// parsing (spaces, quotes, '=').
std::string RenderValue(std::string_view value) {
  bool needs_quotes = value.empty();
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

LogField::LogField(std::string_view k, std::string_view v)
    : key(k), value(RenderValue(v)) {}
LogField::LogField(std::string_view k, const char* v)
    : key(k), value(RenderValue(v)) {}
LogField::LogField(std::string_view k, const std::string& v)
    : key(k), value(RenderValue(v)) {}
LogField::LogField(std::string_view k, int v)
    : key(k), value(std::to_string(v)) {}
LogField::LogField(std::string_view k, int64_t v)
    : key(k), value(std::to_string(v)) {}
LogField::LogField(std::string_view k, uint64_t v)
    : key(k), value(std::to_string(v)) {}
LogField::LogField(std::string_view k, double v)
    : key(k), value(FormatDouble(v)) {}
LogField::LogField(std::string_view k, bool v)
    : key(k), value(v ? "true" : "false") {}

Logger& Logger::Global() {
  // lint:allow-new -- intentionally leaked singleton (no exit-order dtor)
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::set_min_level(LogLevel level) {
  MutexLock lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  MutexLock lock(mu_);
  return min_level_;
}

void Logger::set_sim_clock(const SimClock* clock) {
  MutexLock lock(mu_);
  sim_clock_ = clock;
}

void Logger::set_sink(Sink sink) {
  MutexLock lock(mu_);
  sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const char* component, const char* event,
                 std::initializer_list<LogField> fields) {
  if (!ShouldLog(level)) return;
  std::string line = "level=";
  line += LogLevelName(level);

  MutexLock lock(mu_);
  if (sim_clock_ != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", sim_clock_->Now());
    line += " sim=";
    line += buf;
  } else {
    // Monotonic process-local seconds (the tracer's clock): src/ never
    // reads the wall clock, so two runs of the same workload produce lines
    // that differ only in this field's values, not in shape.
    double mono_seconds = static_cast<double>(Tracer::NowMicros()) / 1e6;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", mono_seconds);
    line += " mono=";
    line += buf;
  }
  line += " component=";
  line += component;
  line += " event=";
  line += event;
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    line += field.value;
  }
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void LogDebug(const char* component, const char* event,
              std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kDebug, component, event, fields);
}
void LogInfo(const char* component, const char* event,
             std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kInfo, component, event, fields);
}
void LogWarn(const char* component, const char* event,
             std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kWarn, component, event, fields);
}
void LogError(const char* component, const char* event,
              std::initializer_list<LogField> fields) {
  Logger::Global().Log(LogLevel::kError, component, event, fields);
}

}  // namespace obs
}  // namespace cloudviews
