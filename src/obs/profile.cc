#include "obs/profile.h"

#include <cstdio>

#include "common/exec_stats.h"
#include "obs/json_writer.h"

namespace cloudviews {
namespace obs {

void QueryProfile::FillFromStats(const ExecutionStats& stats) {
  dop = stats.dop;
  num_operators = stats.num_operators;
  morsels = stats.morsels;
  input_rows = stats.input_rows;
  view_rows = stats.view_rows;
  total_bytes_read = stats.total_bytes_read;
  bytes_spooled = stats.bytes_spooled;
  total_cpu_cost = stats.total_cpu_cost;
  wall_seconds = stats.wall_seconds;
}

double QueryProfile::TotalPhaseSeconds() const {
  double total = 0.0;
  for (const QueryPhase& phase : phases) total += phase.seconds;
  return total;
}

std::string QueryProfile::ToText() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "query profile: job %lld (vc=%s day=%d reuse=%s)\n",
                static_cast<long long>(job_id), virtual_cluster.c_str(), day,
                reuse_enabled ? "on" : "off");
  out += buf;
  for (const QueryPhase& phase : phases) {
    std::snprintf(buf, sizeof(buf), "  %-10s %10.6fs\n", phase.name.c_str(),
                  phase.seconds);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  views: %d matched, %d built", views_matched, views_built);
  out += buf;
  if (!matched_signatures.empty()) {
    out += " [";
    for (size_t i = 0; i < matched_signatures.size(); ++i) {
      if (i > 0) out += ",";
      out += matched_signatures[i].substr(0, 12);
    }
    out += "]";
  }
  out += '\n';
  std::snprintf(buf, sizeof(buf),
                "  exec: dop=%d operators=%d morsels=%llu cpu_cost=%.1f\n",
                dop, num_operators,
                static_cast<unsigned long long>(morsels), total_cpu_cost);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  io: input_rows=%llu view_rows=%llu read=%lluB spooled=%lluB\n",
      static_cast<unsigned long long>(input_rows),
      static_cast<unsigned long long>(view_rows),
      static_cast<unsigned long long>(total_bytes_read),
      static_cast<unsigned long long>(bytes_spooled));
  out += buf;
  return out;
}

std::string QueryProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("job_id", job_id);
  w.Field("virtual_cluster", std::string_view(virtual_cluster));
  w.Field("day", day);
  w.Field("reuse_enabled", reuse_enabled);
  w.Field("views_matched", views_matched);
  w.Field("views_built", views_built);
  w.Key("matched_signatures").BeginArray();
  for (const std::string& sig : matched_signatures) w.String(sig);
  w.EndArray();
  w.Key("phases").BeginArray();
  for (const QueryPhase& phase : phases) {
    w.BeginObject();
    w.Field("name", std::string_view(phase.name));
    w.Field("seconds", phase.seconds);
    w.EndObject();
  }
  w.EndArray();
  w.Field("dop", dop);
  w.Field("num_operators", num_operators);
  w.Field("morsels", morsels);
  w.Field("input_rows", input_rows);
  w.Field("view_rows", view_rows);
  w.Field("total_bytes_read", total_bytes_read);
  w.Field("bytes_spooled", bytes_spooled);
  w.Field("total_cpu_cost", total_cpu_cost);
  w.Field("wall_seconds", wall_seconds);
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace cloudviews
