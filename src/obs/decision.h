#ifndef CLOUDVIEWS_OBS_DECISION_H_
#define CLOUDVIEWS_OBS_DECISION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/decision_reasons.h"

namespace cloudviews {
namespace obs {

// One reuse-relevant decision, recorded at the choice point that made it.
// Together a job's events form its decision trace: every candidate the
// optimizer looked at, why it was (not) used, and what the road not taken
// was estimated to cost — the same cost-model units as the provenance
// ledger's per-hit savings, so hits and misses add up in one currency.
struct DecisionEvent {
  DecisionStage stage = DecisionStage::kExactMatch;
  DecisionReason reason = DecisionReason::kExactMissNoView;
  // Strict signature of the query subtree under consideration.
  Hash128 node_strict;
  // Strict signature of the candidate view involved (zero when none was —
  // e.g. an exact miss with an empty candidate class).
  Hash128 candidate_strict;
  // Match-class key (filter-stripped skeleton hash) of the subtree; the
  // second axis of the miss-attribution table.
  Hash128 match_class;
  // Cost-model quantities at the moment of the decision. `saving` is
  // recompute − view-scan: for hit reasons the estimated realized saving,
  // for miss reasons the estimated *foregone* saving (what using the
  // candidate would have saved, had it been usable); zero when no candidate
  // was priced.
  double recompute_cost = 0.0;
  double view_scan_cost = 0.0;
  double saving = 0.0;
  // Sharing-verdict inputs (kSharing stage only).
  int64_t fanout = 0;
  int64_t subtree_size = 0;
  double net_utility = 0.0;
  // Principled detail string from a closed source (the containment
  // checker's reject_reason, a status message) — never a free-form literal.
  std::string detail;
};

// The decision trace of one job, events in emission order (compile order:
// top-down matching, then bottom-up spool injection, then sharing).
struct JobDecisionTrace {
  int64_t job_id = -1;
  std::vector<DecisionEvent> events;
};

// One row of the fleet-wide miss-attribution table: foregone savings
// bucketed by reason × match class ("top reasons we left latency on the
// table"). Hit reasons never appear here.
struct MissBucket {
  DecisionReason reason = DecisionReason::kExactMissNoView;
  Hash128 match_class;
  int64_t events = 0;
  double foregone_saving = 0.0;
};

// Grand totals across every trace (feeds the hourly time series).
struct DecisionTotals {
  int64_t jobs = 0;
  int64_t events = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  double realized_saving = 0.0;  // sum of `saving` over hit reasons
  double foregone_saving = 0.0;  // sum of `saving` over miss reasons
};

// Append-only per-job decision ledger: one trace per job id, recorded by
// the optimizer/engine/sharing rewrite as a compile makes reuse choices.
// One instance per ReuseEngine, so side-by-side arms never share traces.
//
// Disabled by default: every Record call on a constructed sink starts with
// exactly one relaxed atomic load and touches nothing else (the Tracer
// discipline; verified by bench/micro_obs_overhead). Enable
// programmatically or via the CLOUDVIEWS_OBS_DECISIONS environment
// variable (checked once, at first ledger construction). Recording never
// feeds back into engine decisions, so plans and results are identical
// with the ledger on or off.
//
// Thread safety: recording is mutex-guarded (sharing windows may record
// from concurrent compiles in future engines; the TSan suite exercises
// concurrent appends); the gate itself is lock-free.
class DecisionLedger {
 public:
  DecisionLedger();

  DecisionLedger(const DecisionLedger&) = delete;
  DecisionLedger& operator=(const DecisionLedger&) = delete;

  // Hot-path gate for all emission sites (class-wide, like the tracer: a
  // fleet flips decision tracing on everywhere or nowhere).
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Appends one event to `job_id`'s trace (creating it on first use).
  // No-op when the ledger is disabled.
  void Record(int64_t job_id, DecisionEvent event) EXCLUDES(mu_);

  // --- Inspection ----------------------------------------------------------

  size_t num_jobs() const EXCLUDES(mu_);
  size_t num_events() const EXCLUDES(mu_);

  // Traces in first-recorded job order (deterministic for a deterministic
  // engine run); events within a trace in emission order.
  std::vector<JobDecisionTrace> Traces() const EXCLUDES(mu_);

  // The fleet-wide miss-attribution table: miss events bucketed by
  // reason × match class, sorted by foregone saving descending (ties break
  // on reason name, then class hex — fully deterministic).
  std::vector<MissBucket> MissAttribution() const EXCLUDES(mu_);

  DecisionTotals Totals() const EXCLUDES(mu_);

  // The decision traces as JSON (traces + miss-attribution + totals),
  // rendered via obs::JsonWriter — byte-identical across reruns of the
  // same seed. `job_filter` >= 0 restricts the traces to that one job (the
  // miss table and totals always cover the whole ledger).
  std::string ExportJson(int64_t job_filter = -1) const;

  void Clear() EXCLUDES(mu_);

 private:
  JobDecisionTrace* GetTrace(int64_t job_id) REQUIRES(mu_);

  // atomic[relaxed]: single-flag enable gate, same discipline as
  // Tracer::enabled_; no ordered payload behind it.
  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  std::vector<JobDecisionTrace> traces_ GUARDED_BY(mu_);  // insertion order
  std::unordered_map<int64_t, size_t> index_ GUARDED_BY(mu_);
};

// A ledger handle pre-bound to one job: what the engine threads through the
// optimizer and the sharing rewrite. Copyable and cheap; a
// default-constructed sink records nothing. Emission sites guard event
// construction behind Active() so the disabled path stays a single relaxed
// load (plus one pointer test).
class DecisionSink {
 public:
  DecisionSink() = default;
  DecisionSink(DecisionLedger* ledger, int64_t job_id)
      : ledger_(ledger), job_id_(job_id) {}

  bool Active() const {
    return ledger_ != nullptr && DecisionLedger::Enabled();
  }
  void Record(DecisionEvent event) const {
    if (!Active()) return;
    ledger_->Record(job_id_, std::move(event));
  }
  int64_t job_id() const { return job_id_; }

 private:
  DecisionLedger* ledger_ = nullptr;
  int64_t job_id_ = -1;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_DECISION_H_
