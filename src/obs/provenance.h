#ifndef CLOUDVIEWS_OBS_PROVENANCE_H_
#define CLOUDVIEWS_OBS_PROVENANCE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace obs {

// Accounting rate for storage occupancy: one "cost unit" of rent per this
// many byte-seconds. Calibrated so a ~10 KB view held for a simulated day
// costs a few units — comparable to a single hit's savings, so net utility
// actually turns negative for views that stop being hit.
inline constexpr double kDefaultStorageRentPerByteSecond = 1e-8;

// Lifecycle of one materialized view, as an append-only event stream. The
// legal transitions form the state machine AuditStreams() checks:
//
//   (start) ──► candidate ──► lock-acquired ──► spool-started ──► sealed
//                   ▲              │   ▲             │              │
//                   │              ▼   │             ▼              ▼
//                   │            aborted ◄───── (write/seal fault)  hit ⟲
//                   │              │                                │
//                   └──────────────┴──── invalidated / quarantined /
//                                        reclaimed ◄────────────────┘
//
// Terminal events (aborted, invalidated, quarantined, reclaimed) re-open the
// stream: a later incarnation of the same strict signature appends a fresh
// candidate/lock-acquired and the machine runs again.
enum class ViewEventKind {
  kCandidate = 0,     // the selector published this subexpression
  kLockAcquired,      // a compiling job won the creation lock
  kSpoolStarted,      // the producing job began writing the view
  kSealed,            // early-sealed: readable by other jobs
  kAborted,           // materialization failed; entry withdrawn
  kHit,               // a compiled job answered a subtree from the view
  kInvalidated,       // inputs changed / runtime version bump / fallback
  kQuarantined,       // integrity validation failed on read
  kReclaimed,         // purged (TTL expiry or post-quarantine sweep)
};

const char* ViewEventKindName(ViewEventKind kind);

// One provenance event. `sim_time` is the simulated clock (seconds since
// day 0); events within a stream are nondecreasing in it. Payload fields are
// meaningful only for the kinds noted.
struct ViewEvent {
  ViewEventKind kind = ViewEventKind::kCandidate;
  double sim_time = 0.0;
  int64_t job_id = -1;
  // kCandidate: the selector's expected utility for the subexpression.
  double expected_utility = 0.0;
  // kSealed: materialization cost.
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double build_cost = 0.0;            // spool cost (rows/bytes x CostWeights)
  double spool_latency_seconds = 0.0; // spool start -> published
  // kHit: attributed savings for this one reuse.
  double saved_cost = 0.0;            // SubtreeLatencyCost avoided - scan cost
  double rows_avoided = 0.0;          // base-table rows not scanned
  double bytes_avoided = 0.0;         // base-table bytes not scanned
  double queue_wait_seconds = 0.0;    // queue-time delta context for the hit
  // kAborted / kInvalidated / kQuarantined: cause.
  std::string detail;
};

// The full event stream for one strict signature.
struct ViewStream {
  Hash128 strict;
  Hash128 recurring;
  std::string virtual_cluster;
  std::vector<ViewEvent> events;
};

// Aggregates derived by folding one stream's events (the single source of
// truth — the report and the time-series sampler both reduce the same
// events, which is what makes the ledger "balance" by construction).
struct ViewAggregates {
  int64_t hits = 0;
  int64_t seals = 0;
  int64_t aborts = 0;
  uint64_t rows = 0;                  // rows spooled across seals
  uint64_t bytes = 0;                 // bytes spooled across seals
  double build_cost = 0.0;
  double spool_latency_seconds = 0.0;
  double attributed_savings = 0.0;    // sum of per-hit saved_cost
  double rows_avoided = 0.0;
  double bytes_avoided = 0.0;
  double storage_byte_seconds = 0.0;  // occupancy integral over sealed windows
  double storage_rent = 0.0;          // storage_byte_seconds x rent rate
  double first_event_at = 0.0;
  double last_event_at = 0.0;
  bool sealed = false;                // ever sealed
  bool live = false;                  // sealed and not yet retired at `now`
  // Net utility of the view: what it saved minus what it cost to build and
  // to keep around (the paper's per-view savings attribution).
  double NetUtility() const {
    return attributed_savings - build_cost - storage_rent;
  }
};

// Grand totals across every stream (feeds the hourly time series).
struct LedgerTotals {
  int64_t streams = 0;
  int64_t sealed_views = 0;       // streams that ever sealed
  int64_t live_views = 0;
  int64_t reused_views = 0;       // streams with at least one hit
  int64_t hits = 0;
  int64_t aborts = 0;
  uint64_t bytes_spooled = 0;
  double build_cost = 0.0;
  double attributed_savings = 0.0;
  double rows_avoided = 0.0;
  double bytes_avoided = 0.0;
  double storage_rent = 0.0;
  double net_savings = 0.0;       // savings - build cost - rent
  int64_t negative_utility_views = 0;
};

// Append-only reuse provenance ledger: one event stream per strict
// signature, recorded by the engine/view-manager/view-store/simulator as a
// view moves through its lifecycle. One instance per ReuseEngine, so
// side-by-side arms (baseline vs CloudViews) never share streams.
//
// Disabled by default: every Record* call starts with exactly one relaxed
// atomic load and touches nothing else (the Tracer discipline; verified by
// bench/micro_obs_overhead). Enable programmatically or via the
// CLOUDVIEWS_OBS_PROVENANCE environment variable (checked once, at first
// ledger construction). Recording never feeds back into engine decisions,
// so results are identical with the ledger on or off.
//
// Thread safety: recording is mutex-guarded (spool completions fire from
// executor driver threads); the gate itself is lock-free.
class ProvenanceLedger {
 public:
  ProvenanceLedger();

  ProvenanceLedger(const ProvenanceLedger&) = delete;
  ProvenanceLedger& operator=(const ProvenanceLedger&) = delete;

  // Hot-path gate for all emission sites (class-wide, like the tracer: a
  // fleet flips provenance on everywhere or nowhere).
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // --- Recording (no-ops when disabled) ------------------------------------
  // Pass `now` < 0 when the caller has no simulated timestamp; the event is
  // clamped to the stream's last time (streams stay monotone either way).
  // Candidate/lock events may open a stream; every other kind requires one
  // (events about views that predate enabling the ledger are dropped and
  // counted, never recorded as an illegal half-stream).
  void RecordCandidate(const Hash128& strict, const Hash128& recurring,
                       const std::string& virtual_cluster,
                       double expected_utility, double now) EXCLUDES(mu_);
  void RecordLockAcquired(const Hash128& strict, int64_t job_id, double now)
      EXCLUDES(mu_);
  void RecordSpoolStarted(const Hash128& strict, const Hash128& recurring,
                          const std::string& virtual_cluster, int64_t job_id,
                          double now) EXCLUDES(mu_);
  void RecordSealed(const Hash128& strict, int64_t job_id, double now,
                    uint64_t rows, uint64_t bytes, double build_cost,
                    double spool_latency_seconds) EXCLUDES(mu_);
  void RecordAborted(const Hash128& strict, int64_t job_id, double now,
                     const std::string& detail) EXCLUDES(mu_);
  void RecordHit(const Hash128& strict, int64_t job_id, double now,
                 double saved_cost, double rows_avoided, double bytes_avoided,
                 double queue_wait_seconds) EXCLUDES(mu_);
  void RecordInvalidated(const Hash128& strict, double now,
                         const std::string& detail) EXCLUDES(mu_);
  void RecordQuarantined(const Hash128& strict, double now,
                         const std::string& detail) EXCLUDES(mu_);
  void RecordReclaimed(const Hash128& strict, double now) EXCLUDES(mu_);

  // --- Inspection ----------------------------------------------------------

  size_t num_streams() const EXCLUDES(mu_);

  // Streams in first-recorded order (deterministic for a deterministic
  // engine run — the export order of the insights report).
  std::vector<ViewStream> Streams() const EXCLUDES(mu_);

  // Folds one stream into its aggregates. Open occupancy windows (sealed,
  // not yet retired) accrue rent up to `now`.
  static ViewAggregates Aggregate(const ViewStream& stream, double now,
                                  double rent_per_byte_second);

  LedgerTotals Totals(double now,
                      double rent_per_byte_second =
                          kDefaultStorageRentPerByteSecond) const;

  // Validates every stream against the lifecycle state machine and checks
  // event times are nondecreasing. Returns the first violation found.
  Status AuditStreams() const EXCLUDES(mu_);

  // Full ledger as JSON (streams + per-view aggregates + totals), rendered
  // via obs::JsonWriter — byte-identical across reruns of the same seed.
  std::string ExportJson(double now,
                         double rent_per_byte_second =
                             kDefaultStorageRentPerByteSecond) const;

  // Events dropped because their stream predates the ledger being enabled.
  int64_t dropped_events() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  struct StreamState {
    ViewStream stream;
    double last_time = 0.0;
  };

  // Returns the stream for `strict`, creating it if `create`; null when
  // absent and !create.
  StreamState* GetStream(const Hash128& strict, bool create) REQUIRES(mu_);
  void Append(StreamState* state, ViewEvent event, double now) REQUIRES(mu_);
  void CountDropped() REQUIRES(mu_);

  // atomic[relaxed]: single-flag enable gate, same discipline as
  // Tracer::enabled_; no ordered payload behind it.
  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  std::vector<StreamState> streams_ GUARDED_BY(mu_);  // insertion order
  std::unordered_map<Hash128, size_t, Hash128Hasher> index_ GUARDED_BY(mu_);
  int64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_PROVENANCE_H_
