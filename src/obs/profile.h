#ifndef CLOUDVIEWS_OBS_PROFILE_H_
#define CLOUDVIEWS_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cloudviews {

struct ExecutionStats;

namespace obs {

// One timed compilation/execution phase of a query.
struct QueryPhase {
  std::string name;
  double seconds = 0.0;
};

// Per-query profile report: the phase breakdown measured by the reuse
// engine (and mirrored by tracing spans when the tracer is on) joined with
// the executor's roll-up statistics — the "why did this query match or miss
// a view, and where did its time go" answer an operator needs.
struct QueryProfile {
  int64_t job_id = 0;
  std::string virtual_cluster;
  int day = 0;
  bool reuse_enabled = false;

  int views_matched = 0;
  int views_built = 0;
  std::vector<std::string> matched_signatures;  // hex

  // Phases in execution order: bind, compile, execute, ingest.
  std::vector<QueryPhase> phases;

  // Executor roll-up (copied from ExecutionStats).
  int dop = 1;
  int num_operators = 0;
  uint64_t morsels = 0;
  uint64_t input_rows = 0;
  uint64_t view_rows = 0;
  uint64_t total_bytes_read = 0;
  uint64_t bytes_spooled = 0;
  double total_cpu_cost = 0.0;
  double wall_seconds = 0.0;

  void FillFromStats(const ExecutionStats& stats);

  double TotalPhaseSeconds() const;

  // Human-readable multi-line report.
  std::string ToText() const;
  // Single JSON object (one line).
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_PROFILE_H_
