#ifndef CLOUDVIEWS_OBS_JSON_READER_H_
#define CLOUDVIEWS_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cloudviews {
namespace obs {

// Minimal JSON document model, the read-side counterpart of JsonWriter.
// Just enough for tools/insights_report and the provenance tests to consume
// the engine's own exports: objects preserve key insertion order (so a
// re-rendered report is deterministic), numbers are doubles (JsonWriter
// emits %.17g, which round-trips exactly through strtod).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Typed accessors with defaults (never fail; absent/mistyped -> default).
  double GetNumber(std::string_view key, double def = 0.0) const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  std::string GetString(std::string_view key,
                        const std::string& def = {}) const;
  bool GetBool(std::string_view key, bool def = false) const;
};

// Parses one JSON document (rejecting trailing garbage). Returns
// InvalidArgument with a byte offset on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_JSON_READER_H_
