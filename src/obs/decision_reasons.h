#ifndef CLOUDVIEWS_OBS_DECISION_REASONS_H_
#define CLOUDVIEWS_OBS_DECISION_REASONS_H_

namespace cloudviews {
namespace obs {

// The closed registry of reuse-decision reasons. Every decision the engine
// records into the DecisionLedger names one of these enumerators, and every
// surface that prints a reason goes through DecisionReasonName() — never a
// raw string literal (tools/lint.py `decision-reason` rule enforces this,
// mirroring the metric-name and fault-site registries). Keeping the set
// closed is what makes the fleet-wide miss-attribution table enumerable: a
// dashboard can list every way the engine declines to reuse from this one
// header.
//
// Reason strings are UPPER_SNAKE so they can never collide with the
// lowercase dotted metric-name registry that shares the literal-scanning
// lint machinery.

// Which choice point emitted a decision. Stages group the per-job explain
// tree; reasons are unique across stages, so aggregation never needs the
// pair.
enum class DecisionStage {
  kExactMatch = 0,  // strict-signature view-store lookup
  kGeneralizedMatch,  // containment pipeline after an exact miss
  kViewBuild,  // bottom-up spool-injection policy
  kSharing,  // runtime work-sharing verdicts
};

enum class DecisionReason {
  // --- Exact strict-signature lookup (optimizer MatchViews) ---------------
  kExactHit = 0,  // view found and cheaper than recompute: rewritten
  kExactCostRejected,  // view found but scanning it beats nothing
  kExactMissNoView,  // no sealed live view under this strict signature

  // --- Generalized (containment) matching (TryGeneralizedMatch) -----------
  kStage1FeaturePruned,  // feature vector refutes containment
  kStage2NotContained,  // exact checker declined (detail = its reason)
  kCandidateViewNotLive,  // proof held but the view is gone/unsealed
  kSubsumedCostRejected,  // compensation priced above recompute
  kSubsumedHit,  // containment hit accepted: compensated rewrite

  // --- Spool injection (BuildViews) ----------------------------------------
  kSpoolInjected,  // creation lock won; spool wrapped the candidate
  kSpoolAlreadyMaterialized,  // another job's view already covers it
  kSpoolLockDenied,  // a concurrent job holds the creation lock
  kSpoolCapReached,  // per-job #views cap exhausted before this node

  // --- Runtime work sharing (SharingPolicy via RewriteForSharing) ----------
  kShareNow,  // stream in-flight; spool (if any) stripped
  kShareBoth,  // stream in-flight and keep the view writer
  kShareMaterializeOnly,  // below sharing thresholds; spool path only
};

// Canonical reason strings — the explain/JSON vocabulary, and the closed
// set the `decision-reason` lint scans src/ for. Only this header may spell
// them as literals.
namespace decision_reason_names {
inline constexpr char kExactHit[] = "EXACT_HIT";
inline constexpr char kExactCostRejected[] = "EXACT_COST_REJECTED";
inline constexpr char kExactMissNoView[] = "EXACT_MISS_NO_VIEW";
inline constexpr char kStage1FeaturePruned[] = "STAGE1_FEATURE_PRUNED";
inline constexpr char kStage2NotContained[] = "STAGE2_NOT_CONTAINED";
inline constexpr char kCandidateViewNotLive[] = "CANDIDATE_VIEW_NOT_LIVE";
inline constexpr char kSubsumedCostRejected[] = "SUBSUMED_COST_REJECTED";
inline constexpr char kSubsumedHit[] = "SUBSUMED_HIT";
inline constexpr char kSpoolInjected[] = "SPOOL_INJECTED";
inline constexpr char kSpoolAlreadyMaterialized[] =
    "SPOOL_ALREADY_MATERIALIZED";
inline constexpr char kSpoolLockDenied[] = "SPOOL_LOCK_DENIED";
inline constexpr char kSpoolCapReached[] = "SPOOL_CAP_REACHED";
inline constexpr char kShareNow[] = "SHARING_SHARE_NOW";
inline constexpr char kShareBoth[] = "SHARING_BOTH";
inline constexpr char kShareMaterializeOnly[] = "SHARING_MATERIALIZE_ONLY";
}  // namespace decision_reason_names

inline const char* DecisionStageName(DecisionStage stage) {
  switch (stage) {
    case DecisionStage::kExactMatch:
      return "exact_match";
    case DecisionStage::kGeneralizedMatch:
      return "generalized_match";
    case DecisionStage::kViewBuild:
      return "view_build";
    case DecisionStage::kSharing:
      return "work_sharing";
  }
  return "unknown";
}

inline const char* DecisionReasonName(DecisionReason reason) {
  namespace names = decision_reason_names;
  switch (reason) {
    case DecisionReason::kExactHit:
      return names::kExactHit;
    case DecisionReason::kExactCostRejected:
      return names::kExactCostRejected;
    case DecisionReason::kExactMissNoView:
      return names::kExactMissNoView;
    case DecisionReason::kStage1FeaturePruned:
      return names::kStage1FeaturePruned;
    case DecisionReason::kStage2NotContained:
      return names::kStage2NotContained;
    case DecisionReason::kCandidateViewNotLive:
      return names::kCandidateViewNotLive;
    case DecisionReason::kSubsumedCostRejected:
      return names::kSubsumedCostRejected;
    case DecisionReason::kSubsumedHit:
      return names::kSubsumedHit;
    case DecisionReason::kSpoolInjected:
      return names::kSpoolInjected;
    case DecisionReason::kSpoolAlreadyMaterialized:
      return names::kSpoolAlreadyMaterialized;
    case DecisionReason::kSpoolLockDenied:
      return names::kSpoolLockDenied;
    case DecisionReason::kSpoolCapReached:
      return names::kSpoolCapReached;
    case DecisionReason::kShareNow:
      return names::kShareNow;
    case DecisionReason::kShareBoth:
      return names::kShareBoth;
    case DecisionReason::kShareMaterializeOnly:
      return names::kShareMaterializeOnly;
  }
  return "unknown";
}

// Every enumerator, in declaration order — lets tests and aggregators
// enumerate the closed set without a parallel hand-maintained list.
inline constexpr DecisionReason kAllDecisionReasons[] = {
    DecisionReason::kExactHit,
    DecisionReason::kExactCostRejected,
    DecisionReason::kExactMissNoView,
    DecisionReason::kStage1FeaturePruned,
    DecisionReason::kStage2NotContained,
    DecisionReason::kCandidateViewNotLive,
    DecisionReason::kSubsumedCostRejected,
    DecisionReason::kSubsumedHit,
    DecisionReason::kSpoolInjected,
    DecisionReason::kSpoolAlreadyMaterialized,
    DecisionReason::kSpoolLockDenied,
    DecisionReason::kSpoolCapReached,
    DecisionReason::kShareNow,
    DecisionReason::kShareBoth,
    DecisionReason::kShareMaterializeOnly,
};

// True for reasons that record a reuse that actually happened (the others
// are misses or build/sharing policy verdicts).
inline bool IsHitReason(DecisionReason reason) {
  return reason == DecisionReason::kExactHit ||
         reason == DecisionReason::kSubsumedHit;
}

// True for reasons where a candidate view existed but was not used — the
// events the miss-attribution table buckets foregone savings by.
inline bool IsMissReason(DecisionReason reason) {
  switch (reason) {
    case DecisionReason::kExactCostRejected:
    case DecisionReason::kExactMissNoView:
    case DecisionReason::kStage1FeaturePruned:
    case DecisionReason::kStage2NotContained:
    case DecisionReason::kCandidateViewNotLive:
    case DecisionReason::kSubsumedCostRejected:
      return true;
    default:
      return false;
  }
}

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_DECISION_REASONS_H_
