#include "obs/decision.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/json_writer.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace obs {

namespace {

void WriteEvent(JsonWriter* json, const DecisionEvent& event) {
  json->BeginObject();
  json->Field("stage", DecisionStageName(event.stage));
  json->Field("reason", DecisionReasonName(event.reason));
  json->Field("node", event.node_strict.ToHex());
  json->Field("candidate", event.candidate_strict.ToHex());
  json->Field("match_class", event.match_class.ToHex());
  json->Field("recompute_cost", event.recompute_cost);
  json->Field("view_scan_cost", event.view_scan_cost);
  json->Field("saving", event.saving);
  json->Field("fanout", event.fanout);
  json->Field("subtree_size", event.subtree_size);
  json->Field("net_utility", event.net_utility);
  json->Field("detail", event.detail);
  json->EndObject();
}

}  // namespace

std::atomic<bool> DecisionLedger::enabled_{false};

DecisionLedger::DecisionLedger() {
  // Environment gate, checked once per process at first ledger construction
  // (the tracer discipline).
  static const bool env_checked = [] {
    const char* env = std::getenv("CLOUDVIEWS_OBS_DECISIONS");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      enabled_.store(true, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)env_checked;
}

JobDecisionTrace* DecisionLedger::GetTrace(int64_t job_id) {
  auto it = index_.find(job_id);
  if (it != index_.end()) return &traces_[it->second];
  index_[job_id] = traces_.size();
  traces_.emplace_back();
  traces_.back().job_id = job_id;
  return &traces_.back();
}

void DecisionLedger::Record(int64_t job_id, DecisionEvent event) {
  if (!Enabled()) return;
  static Counter& events =
      MetricsRegistry::Global().counter(metric_names::kDecisionEvents);
  events.Increment();
  MutexLock lock(mu_);
  GetTrace(job_id)->events.push_back(std::move(event));
}

size_t DecisionLedger::num_jobs() const {
  MutexLock lock(mu_);
  return traces_.size();
}

size_t DecisionLedger::num_events() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const JobDecisionTrace& trace : traces_) total += trace.events.size();
  return total;
}

std::vector<JobDecisionTrace> DecisionLedger::Traces() const {
  MutexLock lock(mu_);
  return traces_;
}

std::vector<MissBucket> DecisionLedger::MissAttribution() const {
  // Bucket key: (reason, match_class). A plain map keyed by the pair's hex
  // keeps insertion independent of hash ordering.
  struct Key {
    DecisionReason reason;
    Hash128 match_class;
    bool operator==(const Key& other) const {
      return reason == other.reason && match_class == other.match_class;
    }
  };
  std::vector<MissBucket> buckets;
  {
    MutexLock lock(mu_);
    for (const JobDecisionTrace& trace : traces_) {
      for (const DecisionEvent& event : trace.events) {
        if (!IsMissReason(event.reason)) continue;
        auto it = std::find_if(
            buckets.begin(), buckets.end(), [&](const MissBucket& b) {
              return b.reason == event.reason &&
                     b.match_class == event.match_class;
            });
        if (it == buckets.end()) {
          MissBucket bucket;
          bucket.reason = event.reason;
          bucket.match_class = event.match_class;
          buckets.push_back(bucket);
          it = buckets.end() - 1;
        }
        it->events += 1;
        // Only positive deltas count as savings left on the table: a
        // cost-rejected candidate with a negative delta was *correctly*
        // declined and forewent nothing.
        if (event.saving > 0.0) it->foregone_saving += event.saving;
      }
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const MissBucket& a, const MissBucket& b) {
              if (a.foregone_saving != b.foregone_saving) {
                return a.foregone_saving > b.foregone_saving;
              }
              const int by_name = std::strcmp(DecisionReasonName(a.reason),
                                              DecisionReasonName(b.reason));
              if (by_name != 0) return by_name < 0;
              return a.match_class.ToHex() < b.match_class.ToHex();
            });
  return buckets;
}

DecisionTotals DecisionLedger::Totals() const {
  DecisionTotals totals;
  MutexLock lock(mu_);
  totals.jobs = static_cast<int64_t>(traces_.size());
  for (const JobDecisionTrace& trace : traces_) {
    for (const DecisionEvent& event : trace.events) {
      totals.events += 1;
      if (IsHitReason(event.reason)) {
        totals.hits += 1;
        totals.realized_saving += event.saving;
      } else if (IsMissReason(event.reason)) {
        totals.misses += 1;
        if (event.saving > 0.0) totals.foregone_saving += event.saving;
      }
    }
  }
  return totals;
}

std::string DecisionLedger::ExportJson(int64_t job_filter) const {
  const std::vector<JobDecisionTrace> traces = Traces();
  const std::vector<MissBucket> buckets = MissAttribution();
  const DecisionTotals totals = Totals();

  JsonWriter json;
  json.BeginObject();
  json.Key("jobs");
  json.BeginArray();
  for (const JobDecisionTrace& trace : traces) {
    if (job_filter >= 0 && trace.job_id != job_filter) continue;
    json.BeginObject();
    json.Field("job_id", trace.job_id);
    json.Key("events");
    json.BeginArray();
    for (const DecisionEvent& event : trace.events) {
      WriteEvent(&json, event);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("miss_attribution");
  json.BeginArray();
  for (const MissBucket& bucket : buckets) {
    json.BeginObject();
    json.Field("reason", DecisionReasonName(bucket.reason));
    json.Field("match_class", bucket.match_class.ToHex());
    json.Field("events", bucket.events);
    json.Field("foregone_saving", bucket.foregone_saving);
    json.EndObject();
  }
  json.EndArray();
  json.Key("totals");
  json.BeginObject();
  json.Field("jobs", totals.jobs);
  json.Field("events", totals.events);
  json.Field("hits", totals.hits);
  json.Field("misses", totals.misses);
  json.Field("realized_saving", totals.realized_saving);
  json.Field("foregone_saving", totals.foregone_saving);
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

void DecisionLedger::Clear() {
  MutexLock lock(mu_);
  traces_.clear();
  index_.clear();
}

}  // namespace obs
}  // namespace cloudviews
