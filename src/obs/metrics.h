#ifndef CLOUDVIEWS_OBS_METRICS_H_
#define CLOUDVIEWS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace obs {

// Metric naming convention: `subsystem.object.event`, lowercase,
// dot-separated (e.g. `views.lookup.hit`, `optimizer.rule.view_match`).
// Histograms carry their unit as a suffix (`threadpool.queue_wait_us`).
//
// All instruments are always compiled in and always live: a counter
// increment is one relaxed atomic add on a thread-sharded cache line, cheap
// enough to leave on at any DOP (TSAN-clean by construction).

// Monotonically increasing counter, sharded across cache-line-padded atomic
// cells so concurrent writers at high DOP do not contend on one line.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const;

  // Test-only: zeroes every shard. Callers must be quiesced.
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Cell {
    // atomic[relaxed]: statistical tally; Value() sums shards with no
    // ordering requirement against anything else.
    std::atomic<uint64_t> value{0};
  };
  static size_t ShardIndex();

  Cell cells_[kShards];
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // atomic[relaxed]: last-write-wins sample; no ordered payload.
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound is >= the value; samples above every bound land in the implicit
// overflow bucket. Buckets and the running sum are lock-free atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> upper_bounds;   // finite bounds only
    std::vector<uint64_t> bucket_counts;  // upper_bounds.size() + 1 entries
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot GetSnapshot() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  // atomic[relaxed]: per-bucket tallies; snapshots tolerate torn totals.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  // atomic[relaxed]: see counts_.
  std::atomic<uint64_t> count_{0};
  // atomic[relaxed]: CAS accumulation loop; see counts_.
  std::atomic<double> sum_{0.0};
};

// Process-wide registry of named instruments. Lookup takes a mutex — hot
// paths cache the returned reference in a function-local static:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::Global().counter("views.lookup.hit");
//   hits.Increment();
//
// Instruments live for the life of the process; references never dangle.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name) EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) EXCLUDES(mu_);
  // `upper_bounds` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds) EXCLUDES(mu_);

  // One `name value` (or `name{bucket} value`) line per instrument, sorted
  // by name — the text exposition format.
  std::string SnapshotText() const EXCLUDES(mu_);
  // The same snapshot as a JSON document.
  std::string SnapshotJson() const EXCLUDES(mu_);

  // Test-only: zeroes every instrument (names stay registered).
  void ResetForTest() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

// Default bucket bounds for microsecond-scale latency histograms.
std::vector<double> LatencyBucketsUs();
// Default bucket bounds for second-scale (simulated) waits.
std::vector<double> WaitBucketsSeconds();

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_METRICS_H_
