#ifndef CLOUDVIEWS_OBS_METRIC_NAMES_H_
#define CLOUDVIEWS_OBS_METRIC_NAMES_H_

namespace cloudviews {
namespace obs {
namespace metric_names {

// The closed registry of metric names used by engine code. Every
// MetricsRegistry::counter/gauge/histogram call site in src/ must name one
// of these constants — never a raw string literal — so a dashboard, an
// exporter, and the time-series sampler can enumerate the full instrument
// surface from one header (tools/lint.py `metric-name` rule enforces this,
// mirroring the fault-site registry). Tests and benches may still use ad-hoc
// literals for instruments they create themselves.
//
// Naming convention: `subsystem.object.event`, lowercase, dot-separated;
// histograms carry their unit as a suffix.

// --- Engine (core/reuse_engine.cc) -----------------------------------------
inline constexpr char kEngineJobs[] = "engine.jobs";
inline constexpr char kEngineViewsMatched[] = "engine.views_matched";
inline constexpr char kEngineViewsBuilt[] = "engine.views_built";
inline constexpr char kEngineFallbacks[] = "engine.fallbacks";

// --- Executor (exec/) ------------------------------------------------------
inline constexpr char kExecQueries[] = "exec.queries";
inline constexpr char kExecBytesRead[] = "exec.bytes_read";
inline constexpr char kExecBytesSpooled[] = "exec.bytes_spooled";
inline constexpr char kExecMorsels[] = "exec.morsels";
inline constexpr char kExecSpoolAborts[] = "exec.spool_aborts";

// --- Fault injection (fault/) ----------------------------------------------
inline constexpr char kFaultsInjected[] = "faults.injected";
inline constexpr char kFaultsRetries[] = "faults.retries";

// --- Insights service (core/insights_service.cc) ---------------------------
inline constexpr char kInsightsFetches[] = "insights.fetches";

// --- Optimizer (optimizer/optimizer.cc) ------------------------------------
inline constexpr char kOptimizerRuleViewMatch[] = "optimizer.rule.view_match";
inline constexpr char kOptimizerRuleSpoolInject[] =
    "optimizer.rule.spool_inject";
inline constexpr char kOptimizerViewMatchCostRejected[] =
    "optimizer.view_match.cost_rejected";

// --- Generalized view matching (optimizer/optimizer.cc) --------------------
// Hit-class split: exact strict-signature lookups vs containment-proved
// (subsumption) hits that needed a compensation plan.
inline constexpr char kReuseHitsExact[] = "reuse.hits_exact";
inline constexpr char kReuseHitsSubsumed[] = "reuse.hits_subsumed";
// Staged candidate filter accounting: candidates sharing the match class,
// how many the feature filter pruned, and how many reached the exact
// containment checker.
inline constexpr char kGeneralizedCandidates[] = "generalized.candidates";
inline constexpr char kGeneralizedFilterPruned[] =
    "generalized.filter_pruned";
inline constexpr char kGeneralizedExactChecks[] = "generalized.exact_checks";

// --- Decision ledger (obs/decision.cc) -------------------------------------
inline constexpr char kDecisionEvents[] = "decisions.events";

// --- Provenance ledger (obs/provenance.cc) ---------------------------------
inline constexpr char kProvenanceEvents[] = "provenance.events";
inline constexpr char kProvenanceDropped[] = "provenance.dropped";

// --- Work sharing (sharing/, exec/shared_scan_op.cc) -----------------------
inline constexpr char kSharingHits[] = "sharing.hits";
inline constexpr char kSharingFanout[] = "sharing.fanout";
inline constexpr char kSharingProducerAborts[] = "sharing.producer_aborts";
inline constexpr char kSharingBatchesForwarded[] =
    "sharing.batches_forwarded";

// --- Signature cache (core/cardinality_feedback.cc) ------------------------
inline constexpr char kSignatureCacheLookupHit[] = "signature_cache.lookup.hit";
inline constexpr char kSignatureCacheLookupMiss[] =
    "signature_cache.lookup.miss";

// --- Cluster simulator (cluster/simulator.cc) ------------------------------
inline constexpr char kSimJobs[] = "sim.jobs";
inline constexpr char kSimQueueWaitSeconds[] = "sim.queue_wait_seconds";

// --- Thread pool (common/thread_pool.cc) -----------------------------------
inline constexpr char kThreadpoolTasks[] = "threadpool.tasks";
inline constexpr char kThreadpoolQueueWaitUs[] = "threadpool.queue_wait_us";

// --- View store (storage/view_store.cc) ------------------------------------
inline constexpr char kViewsSealed[] = "views.sealed";
inline constexpr char kViewsLookupHit[] = "views.lookup.hit";
inline constexpr char kViewsLookupMiss[] = "views.lookup.miss";
inline constexpr char kViewsQuarantined[] = "views.quarantined";
inline constexpr char kViewsInvalidations[] = "views.invalidations";

}  // namespace metric_names
}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_METRIC_NAMES_H_
