#include "obs/metrics.h"

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "common/thread_pool.h"
#include "obs/json_writer.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace cloudviews {
namespace obs {

namespace {

// Wires the ThreadPool telemetry seam to the metrics registry and tracer.
// The pool sits below obs in the module DAG and cannot name either, so the
// hooks are installed from this TU: any binary that links the registry
// (i.e. anything that could observe the metrics) also gets pool telemetry.
// Captureless lambdas decay to the plain function pointers the seam wants.
[[maybe_unused]] const bool g_pool_hooks_installed = [] {
  ThreadPool::TelemetryHooks hooks;
  hooks.on_submit = [] {
    static Counter& submitted =
        MetricsRegistry::Global().counter(metric_names::kThreadpoolTasks);
    submitted.Increment();
  };
  hooks.wait_timing_enabled = [] { return Tracer::Enabled(); };
  hooks.now_micros = [] { return Tracer::NowMicros(); };
  hooks.observe_wait_us = [](double micros) {
    static Histogram& queue_wait = MetricsRegistry::Global().histogram(
        metric_names::kThreadpoolQueueWaitUs, LatencyBucketsUs());
    queue_wait.Observe(micros);
  };
  ThreadPool::InstallTelemetryHooks(hooks);
  return true;
}();

}  // namespace

// --- Counter -----------------------------------------------------------------

size_t Counter::ShardIndex() {
  // Stable per-thread shard: hash the thread id once, then reuse.
  thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() +
                                                        1)) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    // relaxed-ok: constructor runs before the histogram is published.
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // overflow bucket
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add for toolchain portability.
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.bucket_counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // lint:allow-new -- intentionally leaked singleton (no exit-order dtor)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::string MetricsRegistry::SnapshotText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name;
    out += ' ';
    out += std::to_string(counter->Value());
    out += '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name;
    out += ' ';
    out += std::to_string(gauge->Value());
    out += '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->GetSnapshot();
    for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      out += name;
      out += "{le=";
      if (i < snap.upper_bounds.size()) {
        JsonWriter w;
        w.Double(snap.upper_bounds[i]);
        out += w.str();
      } else {
        out += "+inf";
      }
      out += "} ";
      out += std::to_string(snap.bucket_counts[i]);
      out += '\n';
    }
    out += name + "_count " + std::to_string(snap.count) + '\n';
    JsonWriter w;
    w.Double(snap.sum);
    out += name + "_sum " + w.str() + '\n';
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Field(name, counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Field(name, gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->GetSnapshot();
    w.Key(name).BeginObject();
    w.Key("upper_bounds").BeginArray();
    for (double b : snap.upper_bounds) w.Double(b);
    w.EndArray();
    w.Key("bucket_counts").BeginArray();
    for (uint64_t c : snap.bucket_counts) w.UInt(c);
    w.EndArray();
    w.Field("count", snap.count);
    w.Field("sum", snap.sum);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<double> LatencyBucketsUs() {
  return {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 100000.0, 1e6};
}

std::vector<double> WaitBucketsSeconds() {
  return {0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0};
}

}  // namespace obs
}  // namespace cloudviews
