#ifndef CLOUDVIEWS_OBS_TIMESERIES_H_
#define CLOUDVIEWS_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cloudviews {
namespace obs {

struct TimeSeriesPoint {
  double t = 0.0;      // simulated time (seconds since day 0)
  double value = 0.0;
};

// Fixed-capacity ring buffer of (time, value) samples. When full, the
// oldest point is overwritten — a two-month simulation sampled hourly fits
// comfortably in the default collector capacity, but a pathological sampler
// degrades to "most recent window" instead of growing without bound.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity);

  void Add(double t, double value);

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  // Total points ever added, including overwritten ones.
  int64_t total_added() const { return total_added_; }

  // Points oldest-to-newest (at most `capacity()` of them).
  std::vector<TimeSeriesPoint> Points() const;

 private:
  std::vector<TimeSeriesPoint> ring_;
  size_t next_ = 0;
  size_t size_ = 0;
  int64_t total_added_ = 0;
};

// Named bundle of time series, filled by the cluster simulator's hourly
// snapshot of the metrics registry + provenance-ledger aggregates, and
// exported as one JSON document for tools/insights_report.
//
// Not thread-safe by design: samples are taken from the simulator's driver
// thread between jobs (simulated time advances on one thread only).
class TimeSeriesCollector {
 public:
  // > 58 days x 24 hourly samples, with slack for sub-hourly cadences.
  static constexpr size_t kDefaultCapacityPerSeries = 2048;

  explicit TimeSeriesCollector(
      size_t capacity_per_series = kDefaultCapacityPerSeries);

  // Returns the series named `name`, creating it on first use.
  TimeSeries& series(const std::string& name);

  const std::map<std::string, TimeSeries>& all() const { return series_; }
  size_t num_series() const { return series_.size(); }

  // {"series":[{"name":...,"total_points":...,"dropped":...,
  //             "points":[[t,v],...]}]}, series sorted by name.
  std::string ExportJson() const;

  void Clear() { series_.clear(); }

 private:
  size_t capacity_per_series_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_TIMESERIES_H_
