#include "obs/timeseries.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace cloudviews {
namespace obs {

TimeSeries::TimeSeries(size_t capacity)
    : ring_(std::max<size_t>(1, capacity)) {}

void TimeSeries::Add(double t, double value) {
  ring_[next_] = TimeSeriesPoint{t, value};
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  total_added_ += 1;
}

std::vector<TimeSeriesPoint> TimeSeries::Points() const {
  std::vector<TimeSeriesPoint> out;
  out.reserve(size_);
  // When the ring has wrapped, the oldest point sits at next_.
  size_t start = size_ < ring_.size() ? 0 : next_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TimeSeriesCollector::TimeSeriesCollector(size_t capacity_per_series)
    : capacity_per_series_(capacity_per_series) {}

TimeSeries& TimeSeriesCollector::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(capacity_per_series_)).first;
  }
  return it->second;
}

std::string TimeSeriesCollector::ExportJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("series");
  w.BeginArray();
  for (const auto& [name, ts] : series_) {  // std::map: sorted by name
    w.BeginObject();
    w.Field("name", name);
    w.Field("total_points", ts.total_added());
    w.Field("dropped",
            ts.total_added() - static_cast<int64_t>(ts.size()));
    w.Key("points");
    w.BeginArray();
    for (const TimeSeriesPoint& p : ts.Points()) {
      w.BeginArray();
      w.Double(p.t);
      w.Double(p.value);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace obs
}  // namespace cloudviews
