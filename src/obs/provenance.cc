#include "obs/provenance.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/json_writer.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace obs {

namespace {

// Legal predecessor set of the lifecycle state machine, per target kind.
bool LegalTransition(ViewEventKind from, ViewEventKind to) {
  using K = ViewEventKind;
  switch (to) {
    case K::kCandidate:
      // A fresh incarnation after any terminal event.
      return from == K::kAborted || from == K::kInvalidated ||
             from == K::kQuarantined || from == K::kReclaimed;
    case K::kLockAcquired:
      return from == K::kCandidate || from == K::kAborted ||
             from == K::kInvalidated || from == K::kQuarantined ||
             from == K::kReclaimed;
    case K::kSpoolStarted:
      return from == K::kLockAcquired;
    case K::kSealed:
      return from == K::kSpoolStarted;
    case K::kAborted:
      return from == K::kLockAcquired || from == K::kSpoolStarted;
    case K::kHit:
      return from == K::kSealed || from == K::kHit;
    case K::kInvalidated:
    case K::kQuarantined:
      return from == K::kSealed || from == K::kHit;
    case K::kReclaimed:
      // TTL purge of a sealed/hit view, the sweep after a quarantine, or an
      // orphaned half-materialization (a spool under a Limit may never run).
      return from == K::kSealed || from == K::kHit ||
             from == K::kQuarantined || from == K::kSpoolStarted;
  }
  return false;
}

bool MayStartStream(ViewEventKind kind) {
  return kind == ViewEventKind::kCandidate ||
         kind == ViewEventKind::kLockAcquired;
}

// Storage-level retirement events (abort/invalidate/quarantine/reclaim) can
// trail the engine-level event that already closed the stream: the store
// purges an aborted half-materialization long after the abort was recorded,
// possibly after a fresh candidate reopened the stream. Such echoes carry no
// information — the first terminal event won — so they are suppressed
// rather than recorded as illegal transitions.
bool IsStaleRetirement(const ViewStream& stream, ViewEventKind kind) {
  return !stream.events.empty() &&
         !LegalTransition(stream.events.back().kind, kind);
}

}  // namespace

const char* ViewEventKindName(ViewEventKind kind) {
  switch (kind) {
    case ViewEventKind::kCandidate:
      return "candidate";
    case ViewEventKind::kLockAcquired:
      return "lock_acquired";
    case ViewEventKind::kSpoolStarted:
      return "spool_started";
    case ViewEventKind::kSealed:
      return "sealed";
    case ViewEventKind::kAborted:
      return "aborted";
    case ViewEventKind::kHit:
      return "hit";
    case ViewEventKind::kInvalidated:
      return "invalidated";
    case ViewEventKind::kQuarantined:
      return "quarantined";
    case ViewEventKind::kReclaimed:
      return "reclaimed";
  }
  return "unknown";
}

std::atomic<bool> ProvenanceLedger::enabled_{false};

ProvenanceLedger::ProvenanceLedger() {
  // Environment gate, checked once per process at first ledger construction
  // (the tracer discipline).
  static const bool env_checked = [] {
    const char* env = std::getenv("CLOUDVIEWS_OBS_PROVENANCE");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') {
      enabled_.store(true, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)env_checked;
}

ProvenanceLedger::StreamState* ProvenanceLedger::GetStream(
    const Hash128& strict, bool create) {
  auto it = index_.find(strict);
  if (it != index_.end()) return &streams_[it->second];
  if (!create) return nullptr;
  index_[strict] = streams_.size();
  streams_.emplace_back();
  streams_.back().stream.strict = strict;
  return &streams_.back();
}

void ProvenanceLedger::Append(StreamState* state, ViewEvent event,
                              double now) {
  // Streams are monotone in simulated time by construction: callers with no
  // timestamp (now < 0) inherit the stream's last time, and a stale
  // timestamp is clamped forward.
  event.sim_time = now >= 0.0 ? std::max(now, state->last_time)
                              : state->last_time;
  state->last_time = event.sim_time;
  state->stream.events.push_back(std::move(event));
  static Counter& events =
      MetricsRegistry::Global().counter(metric_names::kProvenanceEvents);
  events.Increment();
}

void ProvenanceLedger::CountDropped() {
  dropped_ += 1;
  static Counter& dropped =
      MetricsRegistry::Global().counter(metric_names::kProvenanceDropped);
  dropped.Increment();
}

void ProvenanceLedger::RecordCandidate(const Hash128& strict,
                                       const Hash128& recurring,
                                       const std::string& virtual_cluster,
                                       double expected_utility, double now) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/true);
  if (!state->stream.events.empty()) {
    // Selections re-publish every day; only a fresh incarnation (after a
    // terminal event) gets a new candidate event.
    ViewEventKind last = state->stream.events.back().kind;
    if (!LegalTransition(last, ViewEventKind::kCandidate)) return;
  }
  if (state->stream.recurring.IsZero()) state->stream.recurring = recurring;
  if (state->stream.virtual_cluster.empty()) {
    state->stream.virtual_cluster = virtual_cluster;
  }
  ViewEvent event;
  event.kind = ViewEventKind::kCandidate;
  event.expected_utility = expected_utility;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordLockAcquired(const Hash128& strict,
                                          int64_t job_id, double now) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/true);
  if (!state->stream.events.empty()) {
    const ViewEvent& last = state->stream.events.back();
    // The lock is re-entrant for its holder: a recompile of the same job
    // re-acquires without a new event.
    if (last.kind == ViewEventKind::kLockAcquired && last.job_id == job_id) {
      return;
    }
  }
  ViewEvent event;
  event.kind = ViewEventKind::kLockAcquired;
  event.job_id = job_id;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordSpoolStarted(const Hash128& strict,
                                          const Hash128& recurring,
                                          const std::string& virtual_cluster,
                                          int64_t job_id, double now) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  if (state->stream.recurring.IsZero()) state->stream.recurring = recurring;
  // The producing VC is authoritative for attribution (a candidate may have
  // been tagged with the whole list of VCs that ran the template).
  state->stream.virtual_cluster = virtual_cluster;
  ViewEvent event;
  event.kind = ViewEventKind::kSpoolStarted;
  event.job_id = job_id;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordSealed(const Hash128& strict, int64_t job_id,
                                    double now, uint64_t rows, uint64_t bytes,
                                    double build_cost,
                                    double spool_latency_seconds) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  ViewEvent event;
  event.kind = ViewEventKind::kSealed;
  event.job_id = job_id;
  event.rows = rows;
  event.bytes = bytes;
  event.build_cost = build_cost;
  event.spool_latency_seconds = spool_latency_seconds;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordAborted(const Hash128& strict, int64_t job_id,
                                     double now, const std::string& detail) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  // AbortMaterialize is idempotent (and the store echoes a generic abort
  // after the manager's detailed one); so is the provenance.
  if (IsStaleRetirement(state->stream, ViewEventKind::kAborted)) return;
  ViewEvent event;
  event.kind = ViewEventKind::kAborted;
  event.job_id = job_id;
  event.detail = detail;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordHit(const Hash128& strict, int64_t job_id,
                                 double now, double saved_cost,
                                 double rows_avoided, double bytes_avoided,
                                 double queue_wait_seconds) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  ViewEvent event;
  event.kind = ViewEventKind::kHit;
  event.job_id = job_id;
  event.saved_cost = saved_cost;
  event.rows_avoided = rows_avoided;
  event.bytes_avoided = bytes_avoided;
  event.queue_wait_seconds = queue_wait_seconds;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordInvalidated(const Hash128& strict, double now,
                                         const std::string& detail) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  if (IsStaleRetirement(state->stream, ViewEventKind::kInvalidated)) return;
  ViewEvent event;
  event.kind = ViewEventKind::kInvalidated;
  event.detail = detail;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordQuarantined(const Hash128& strict, double now,
                                         const std::string& detail) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  if (IsStaleRetirement(state->stream, ViewEventKind::kQuarantined)) return;
  ViewEvent event;
  event.kind = ViewEventKind::kQuarantined;
  event.detail = detail;
  Append(state, std::move(event), now);
}

void ProvenanceLedger::RecordReclaimed(const Hash128& strict, double now) {
  if (!Enabled()) return;
  MutexLock lock(mu_);
  StreamState* state = GetStream(strict, /*create=*/false);
  if (state == nullptr) {
    CountDropped();
    return;
  }
  if (IsStaleRetirement(state->stream, ViewEventKind::kReclaimed)) return;
  ViewEvent event;
  event.kind = ViewEventKind::kReclaimed;
  Append(state, std::move(event), now);
}

size_t ProvenanceLedger::num_streams() const {
  MutexLock lock(mu_);
  return streams_.size();
}

int64_t ProvenanceLedger::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<ViewStream> ProvenanceLedger::Streams() const {
  MutexLock lock(mu_);
  std::vector<ViewStream> out;
  out.reserve(streams_.size());
  for (const StreamState& state : streams_) out.push_back(state.stream);
  return out;
}

ViewAggregates ProvenanceLedger::Aggregate(const ViewStream& stream,
                                           double now,
                                           double rent_per_byte_second) {
  ViewAggregates agg;
  if (stream.events.empty()) return agg;
  agg.first_event_at = stream.events.front().sim_time;
  agg.last_event_at = stream.events.back().sim_time;
  // Occupancy window of the current sealed incarnation.
  bool window_open = false;
  double window_start = 0.0;
  double window_bytes = 0.0;
  for (const ViewEvent& e : stream.events) {
    switch (e.kind) {
      case ViewEventKind::kSealed:
        agg.sealed = true;
        agg.seals += 1;
        agg.rows += e.rows;
        agg.bytes += e.bytes;
        agg.build_cost += e.build_cost;
        agg.spool_latency_seconds += e.spool_latency_seconds;
        window_open = true;
        window_start = e.sim_time;
        window_bytes = static_cast<double>(e.bytes);
        break;
      case ViewEventKind::kHit:
        agg.hits += 1;
        agg.attributed_savings += e.saved_cost;
        agg.rows_avoided += e.rows_avoided;
        agg.bytes_avoided += e.bytes_avoided;
        break;
      case ViewEventKind::kAborted:
        agg.aborts += 1;
        break;
      case ViewEventKind::kInvalidated:
      case ViewEventKind::kQuarantined:
      case ViewEventKind::kReclaimed:
        if (window_open) {
          agg.storage_byte_seconds +=
              window_bytes * std::max(0.0, e.sim_time - window_start);
          window_open = false;
        }
        break;
      default:
        break;
    }
  }
  if (window_open) {
    // Still live: rent accrues up to the export time.
    agg.storage_byte_seconds +=
        window_bytes * std::max(0.0, now - window_start);
    agg.live = true;
  }
  agg.storage_rent = agg.storage_byte_seconds * rent_per_byte_second;
  return agg;
}

LedgerTotals ProvenanceLedger::Totals(double now,
                                      double rent_per_byte_second) const {
  LedgerTotals totals;
  MutexLock lock(mu_);
  totals.streams = static_cast<int64_t>(streams_.size());
  for (const StreamState& state : streams_) {
    ViewAggregates agg =
        Aggregate(state.stream, now, rent_per_byte_second);
    if (agg.sealed) totals.sealed_views += 1;
    if (agg.live) totals.live_views += 1;
    if (agg.hits > 0) totals.reused_views += 1;
    if (agg.sealed && agg.NetUtility() < 0.0) {
      totals.negative_utility_views += 1;
    }
    totals.hits += agg.hits;
    totals.aborts += agg.aborts;
    totals.bytes_spooled += agg.bytes;
    totals.build_cost += agg.build_cost;
    totals.attributed_savings += agg.attributed_savings;
    totals.rows_avoided += agg.rows_avoided;
    totals.bytes_avoided += agg.bytes_avoided;
    totals.storage_rent += agg.storage_rent;
  }
  totals.net_savings =
      totals.attributed_savings - totals.build_cost - totals.storage_rent;
  return totals;
}

Status ProvenanceLedger::AuditStreams() const {
  MutexLock lock(mu_);
  for (const StreamState& state : streams_) {
    const ViewStream& stream = state.stream;
    if (stream.events.empty()) {
      return Status::Internal("provenance stream " + stream.strict.ToHex() +
                              " has no events");
    }
    if (!MayStartStream(stream.events.front().kind)) {
      return Status::Internal(
          "provenance stream " + stream.strict.ToHex() +
          " starts with illegal event " +
          ViewEventKindName(stream.events.front().kind));
    }
    for (size_t i = 1; i < stream.events.size(); ++i) {
      const ViewEvent& prev = stream.events[i - 1];
      const ViewEvent& cur = stream.events[i];
      if (cur.sim_time < prev.sim_time) {
        return Status::Internal(
            "provenance stream " + stream.strict.ToHex() +
            " is not monotone in simulated time at event " +
            std::to_string(i));
      }
      if (!LegalTransition(prev.kind, cur.kind)) {
        return Status::Internal(
            "provenance stream " + stream.strict.ToHex() +
            " has illegal transition " +
            std::string(ViewEventKindName(prev.kind)) + " -> " +
            ViewEventKindName(cur.kind) + " at event " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

std::string ProvenanceLedger::ExportJson(double now,
                                         double rent_per_byte_second) const {
  std::vector<ViewStream> streams = Streams();
  LedgerTotals totals = Totals(now, rent_per_byte_second);
  JsonWriter w;
  w.BeginObject();
  w.Field("now", now);
  w.Field("rent_per_byte_second", rent_per_byte_second);
  w.Field("dropped_events", dropped_events());
  w.Key("totals");
  w.BeginObject();
  w.Field("streams", totals.streams);
  w.Field("sealed_views", totals.sealed_views);
  w.Field("live_views", totals.live_views);
  w.Field("reused_views", totals.reused_views);
  w.Field("hits", totals.hits);
  w.Field("aborts", totals.aborts);
  w.Field("bytes_spooled", totals.bytes_spooled);
  w.Field("build_cost", totals.build_cost);
  w.Field("attributed_savings", totals.attributed_savings);
  w.Field("rows_avoided", totals.rows_avoided);
  w.Field("bytes_avoided", totals.bytes_avoided);
  w.Field("storage_rent", totals.storage_rent);
  w.Field("net_savings", totals.net_savings);
  w.Field("negative_utility_views", totals.negative_utility_views);
  w.EndObject();
  w.Key("views");
  w.BeginArray();
  for (const ViewStream& stream : streams) {
    ViewAggregates agg = Aggregate(stream, now, rent_per_byte_second);
    w.BeginObject();
    w.Field("strict", stream.strict.ToHex());
    w.Field("recurring", stream.recurring.ToHex());
    w.Field("virtual_cluster", stream.virtual_cluster);
    w.Key("aggregates");
    w.BeginObject();
    w.Field("hits", agg.hits);
    w.Field("seals", agg.seals);
    w.Field("aborts", agg.aborts);
    w.Field("rows", agg.rows);
    w.Field("bytes", agg.bytes);
    w.Field("build_cost", agg.build_cost);
    w.Field("spool_latency_seconds", agg.spool_latency_seconds);
    w.Field("attributed_savings", agg.attributed_savings);
    w.Field("rows_avoided", agg.rows_avoided);
    w.Field("bytes_avoided", agg.bytes_avoided);
    w.Field("storage_byte_seconds", agg.storage_byte_seconds);
    w.Field("storage_rent", agg.storage_rent);
    w.Field("net_utility", agg.NetUtility());
    w.Field("sealed", agg.sealed);
    w.Field("live", agg.live);
    w.Field("first_event_at", agg.first_event_at);
    w.Field("last_event_at", agg.last_event_at);
    w.EndObject();
    w.Key("events");
    w.BeginArray();
    for (const ViewEvent& e : stream.events) {
      w.BeginObject();
      w.Field("kind", ViewEventKindName(e.kind));
      w.Field("t", e.sim_time);
      if (e.job_id >= 0) w.Field("job", e.job_id);
      switch (e.kind) {
        case ViewEventKind::kCandidate:
          w.Field("expected_utility", e.expected_utility);
          break;
        case ViewEventKind::kSealed:
          w.Field("rows", e.rows);
          w.Field("bytes", e.bytes);
          w.Field("build_cost", e.build_cost);
          w.Field("spool_latency_seconds", e.spool_latency_seconds);
          break;
        case ViewEventKind::kHit:
          w.Field("saved_cost", e.saved_cost);
          w.Field("rows_avoided", e.rows_avoided);
          w.Field("bytes_avoided", e.bytes_avoided);
          w.Field("queue_wait_seconds", e.queue_wait_seconds);
          break;
        case ViewEventKind::kAborted:
        case ViewEventKind::kInvalidated:
        case ViewEventKind::kQuarantined:
          if (!e.detail.empty()) w.Field("detail", e.detail);
          break;
        default:
          break;
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

void ProvenanceLedger::Clear() {
  MutexLock lock(mu_);
  streams_.clear();
  index_.clear();
  dropped_ = 0;
}

}  // namespace obs
}  // namespace cloudviews
