#ifndef CLOUDVIEWS_OBS_LOG_H_
#define CLOUDVIEWS_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudviews {

class SimClock;

namespace obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// One key=value pair on a log line. Values are pre-rendered at the call
// site; construction from the common scalar types is provided.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v);
  LogField(std::string_view k, const char* v);
  LogField(std::string_view k, const std::string& v);
  LogField(std::string_view k, int v);
  LogField(std::string_view k, int64_t v);
  LogField(std::string_view k, uint64_t v);
  LogField(std::string_view k, double v);
  LogField(std::string_view k, bool v);
};

// Leveled structured logger emitting one `level=... mono=... component=...
// event=... k=v ...` line per call. Replaces the ad-hoc fprintf/std::cerr
// calls that used to be scattered through the engine and examples.
//
// Determinism: when a SimClock is installed (the simulator does this), the
// timestamp field is `sim=<simulated seconds>` — identical across runs.
// Without one, the fallback is `mono=<seconds on the process-local
// monotonic clock>` (never wall-clock time: src/ is wall-clock-free by
// lint rule, so identical runs differ only in this one field's values).
class Logger {
 public:
  using Sink = std::function<void(const std::string& line)>;

  static Logger& Global();

  void set_min_level(LogLevel level) EXCLUDES(mu_);
  LogLevel min_level() const EXCLUDES(mu_);

  // Installs (or clears, with nullptr) the simulated clock used for
  // timestamps. The clock must outlive its installation.
  void set_sim_clock(const SimClock* clock) EXCLUDES(mu_);

  // Replaces the sink; nullptr restores the default stderr sink.
  void set_sink(Sink sink) EXCLUDES(mu_);

  bool ShouldLog(LogLevel level) const { return level >= min_level(); }

  void Log(LogLevel level, const char* component, const char* event,
           std::initializer_list<LogField> fields = {}) EXCLUDES(mu_);

 private:
  Logger() = default;

  mutable Mutex mu_;
  LogLevel min_level_ GUARDED_BY(mu_) = LogLevel::kInfo;
  const SimClock* sim_clock_ GUARDED_BY(mu_) = nullptr;
  Sink sink_ GUARDED_BY(mu_);
};

// Convenience wrappers over Logger::Global().
void LogDebug(const char* component, const char* event,
              std::initializer_list<LogField> fields = {});
void LogInfo(const char* component, const char* event,
             std::initializer_list<LogField> fields = {});
void LogWarn(const char* component, const char* event,
             std::initializer_list<LogField> fields = {});
void LogError(const char* component, const char* event,
              std::initializer_list<LogField> fields = {});

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_LOG_H_
