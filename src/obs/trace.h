#ifndef CLOUDVIEWS_OBS_TRACE_H_
#define CLOUDVIEWS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace obs {

// One completed span. Timestamps are microseconds on a process-local
// monotonic clock (steady_clock, anchored at the first tracer use), so a
// merged trace across threads is self-consistent.
struct TraceEvent {
  std::string name;
  const char* category = "engine";  // must point to a static string
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint64_t id = 0;         // unique per span, process-wide
  uint64_t parent_id = 0;  // enclosing span on the same thread (0 = root)
  int depth = 0;           // nesting depth on its thread (0 = thread root)
  uint32_t tid = 0;        // stable small per-thread index
  std::string args;        // pre-rendered JSON object *body* ("" = none)
};

// Hierarchical tracer recording spans into per-thread buffers. Disabled by
// default; when disabled, starting a span costs exactly one relaxed atomic
// load and records nothing. Enable programmatically or by setting the
// CLOUDVIEWS_OBS_TRACE environment variable (checked once, at first use).
//
// Recording never mutates engine state, so query results are identical with
// tracing on or off at any DOP.
class Tracer {
 public:
  static Tracer& Global();

  // Hot-path gate for all instrumentation sites.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Drops every recorded event (buffers stay registered).
  void Clear() EXCLUDES(mu_);

  // Records a completed span with caller-measured timing — used where the
  // interval is already being measured (e.g. per-morsel busy time), so the
  // trace agrees with the telemetry to microsecond rounding.
  void RecordComplete(std::string name, const char* category,
                      uint64_t start_us, uint64_t dur_us,
                      std::string args = {});

  // Merged snapshot of every thread's buffer, sorted by (start_us, id).
  std::vector<TraceEvent> Collect() const EXCLUDES(mu_);

  // Chrome trace_event JSON ("complete" events), loadable in
  // chrome://tracing or https://ui.perfetto.dev.
  std::string ExportChromeJson() const;

  // Microseconds since the tracer's clock anchor.
  static uint64_t NowMicros();

 private:
  friend class Span;

  struct ThreadBuffer {
    mutable Mutex mu;
    std::vector<TraceEvent> events GUARDED_BY(mu);
    // Written once before the buffer is published (under the tracer's mu_),
    // read only by the owning thread afterwards.
    uint32_t tid = 0;
  };

  Tracer();
  ThreadBuffer* LocalBuffer() EXCLUDES(mu_);
  void Record(TraceEvent event) EXCLUDES(mu_);

  // atomic[relaxed]: single-flag enable gate; instrumentation sites only
  // need to eventually observe a flip, never any ordered payload.
  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  // atomic[relaxed]: unique-ID tickets; uniqueness needs atomicity only.
  std::atomic<uint32_t> next_tid_{0};
  // atomic[relaxed]: see next_tid_.
  std::atomic<uint64_t> next_id_{0};
};

// RAII span: records a TraceEvent on destruction when the tracer was
// enabled at construction. Maintains the per-thread parent/depth chain, so
// nested spans reconstruct the call hierarchy.
class Span {
 public:
  explicit Span(const char* name, const char* category = "engine");
  Span(std::string name, const char* category = "engine");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  // Attaches a key/value pair rendered into the span's trace args.
  void Arg(std::string_view key, std::string_view value);
  void Arg(std::string_view key, int64_t value);
  void Arg(std::string_view key, uint64_t value);
  void Arg(std::string_view key, double value);

 private:
  void Init(const char* category);

  bool active_ = false;
  std::string name_;
  const char* category_ = "engine";
  uint64_t start_us_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  std::string args_;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_TRACE_H_
