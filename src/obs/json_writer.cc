#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace cloudviews {
namespace obs {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Infinity literals
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, const char* value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, int value) {
  return Key(key).Int(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, int64_t value) {
  return Key(key).Int(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, uint64_t value) {
  return Key(key).UInt(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, double value) {
  return Key(key).Double(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, bool value) {
  return Key(key).Bool(value);
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace cloudviews
