#include "obs/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace cloudviews {
namespace obs {

namespace {

// Recursive-descent parser over a string_view. Depth-limited so a
// pathological input fails cleanly instead of overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CLOUDVIEWS_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_ += 1;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_ += 1;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (ConsumeLiteral("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    pos_ += 1;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      CLOUDVIEWS_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      CLOUDVIEWS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    pos_ += 1;  // '['
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CLOUDVIEWS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    pos_ += 1;  // opening quote
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        pos_ += 1;
        return Status::OK();
      }
      if (c == '\\') {
        pos_ += 1;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_];
        pos_ += 1;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Error("bad hex digit in \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the code point (BMP only — the writer never
            // emits surrogate pairs; lone surrogates pass through as-is).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
        continue;
      }
      out->push_back(c);
      pos_ += 1;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_ += 1;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_ += 1;
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number_value : def;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber
             ? static_cast<int64_t>(v->number_value)
             : def;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string_value : def;
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->bool_value : def;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace cloudviews
