#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/json_writer.h"

namespace cloudviews {
namespace obs {

namespace {

// Per-thread parent chain for Span nesting. Plain thread-locals: only the
// owning thread reads or writes them.
thread_local uint64_t tls_parent_span = 0;
thread_local int tls_span_depth = 0;

std::chrono::steady_clock::time_point ClockAnchor() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return anchor;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Tracer::Tracer() {
  ClockAnchor();  // pin the time origin before any span is recorded
  const char* env = std::getenv("CLOUDVIEWS_OBS_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::Global() {
  // lint:allow-new -- intentionally leaked singleton (no exit-order dtor)
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ClockAnchor())
          .count());
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  // The shared_ptr keeps the buffer alive past thread exit, so events from
  // short-lived pool threads survive until export.
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    MutexLock lock(mu_);
    buffers_.push_back(buffer);
    return buffer;
  }();
  return local.get();
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = buffer->tid;
  MutexLock lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void Tracer::RecordComplete(std::string name, const char* category,
                            uint64_t start_us, uint64_t dur_us,
                            std::string args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  event.parent_id = tls_parent_span;
  event.depth = tls_span_depth;
  event.args = std::move(args);
  Record(std::move(event));
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<TraceEvent> events = Collect();
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Field("name", std::string_view(ev.name));
    w.Field("cat", ev.category);
    w.Field("ph", "X");
    w.Field("ts", ev.start_us);
    w.Field("dur", ev.dur_us);
    w.Field("pid", 1);
    w.Field("tid", static_cast<uint64_t>(ev.tid));
    w.Key("args").BeginObject();
    w.Field("id", ev.id);
    w.Field("parent", ev.parent_id);
    w.Field("depth", ev.depth);
    if (!ev.args.empty()) {
      // Pre-rendered "key":value pairs from Span::Arg.
      w.Key("fields").RawValue("{" + ev.args + "}");
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

// --- Span --------------------------------------------------------------------

void Span::Init(const char* category) {
  if (!Tracer::Enabled()) return;
  active_ = true;
  category_ = category;
  start_us_ = Tracer::NowMicros();
  Tracer& tracer = Tracer::Global();
  id_ = tracer.next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_id_ = tls_parent_span;
  depth_ = tls_span_depth;
  tls_parent_span = id_;
  tls_span_depth = depth_ + 1;
}

Span::Span(const char* name, const char* category) : name_(name) {
  Init(category);
}

Span::Span(std::string name, const char* category) : name_(std::move(name)) {
  Init(category);
}

Span::~Span() {
  if (!active_) return;
  tls_parent_span = parent_id_;
  tls_span_depth = depth_;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.start_us = start_us_;
  event.dur_us = Tracer::NowMicros() - start_us_;
  event.id = id_;
  event.parent_id = parent_id_;
  event.depth = depth_;
  event.args = std::move(args_);
  Tracer::Global().Record(std::move(event));
}

void Span::Arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += JsonWriter::Escape(key);
  args_ += "\":\"";
  args_ += JsonWriter::Escape(value);
  args_ += '"';
}

void Span::Arg(std::string_view key, int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += JsonWriter::Escape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

void Span::Arg(std::string_view key, uint64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += JsonWriter::Escape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

void Span::Arg(std::string_view key, double value) {
  if (!active_) return;
  JsonWriter w;
  w.Double(value);
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += JsonWriter::Escape(key);
  args_ += "\":";
  args_ += w.str();
}

}  // namespace obs
}  // namespace cloudviews
