#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace cloudviews {

namespace {

// Every cooked dataset shares this layout: a row id, a foreign key into a
// 0..199 id domain, two dimension columns, and two metrics. Uniform layouts
// keep generated templates join-compatible, like the normalized outputs of
// a data-cooking stage.
constexpr int kColId = 0;
constexpr int kColFk = 1;
constexpr int kColDim1 = 2;
constexpr int kColDim2 = 3;
constexpr int kColMetric1 = 4;
constexpr int kColMetric2 = 5;
constexpr int kNumCols = 6;
constexpr int kFkDomain = 200;
constexpr int kDim1Cardinality = 10;
constexpr int kDim2Cardinality = 100;

Schema CookedSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"fk", DataType::kInt64},
                 {"dim1", DataType::kString},
                 {"dim2", DataType::kInt64},
                 {"metric1", DataType::kDouble},
                 {"metric2", DataType::kInt64}});
}

ExprPtr Col(int index, const std::string& name) {
  return Expr::MakeColumn(index, name);
}

ExprPtr IntLit(int64_t v) { return Expr::MakeLiteral(Value(v)); }
ExprPtr StrLit(const std::string& s) { return Expr::MakeLiteral(Value(s)); }

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadProfile profile)
    : profile_(std::move(profile)), random_(profile_.seed) {
  // Dataset sizes.
  dataset_rows_.resize(static_cast<size_t>(profile_.num_shared_datasets));
  for (int i = 0; i < profile_.num_shared_datasets; ++i) {
    dataset_rows_[static_cast<size_t>(i)] = static_cast<int>(
        random_.UniformRange(profile_.min_rows, profile_.max_rows));
  }

  // Motifs pick datasets by Zipf popularity: a few hot cooked datasets feed
  // most of the downstream analytics.
  motifs_.reserve(static_cast<size_t>(profile_.num_motifs));
  for (int m = 0; m < profile_.num_motifs; ++m) {
    Motif motif;
    motif.primary_dataset = static_cast<int>(random_.Zipf(
        static_cast<uint64_t>(profile_.num_shared_datasets),
        profile_.zipf_skew));
    motif.secondary_dataset = static_cast<int>(random_.Zipf(
        static_cast<uint64_t>(profile_.num_shared_datasets),
        profile_.zipf_skew));
    if (motif.secondary_dataset == motif.primary_dataset) {
      motif.secondary_dataset =
          (motif.primary_dataset + 1) % profile_.num_shared_datasets;
    }
    motif.filter_category = static_cast<int>(random_.Uniform(kDim1Cardinality));
    motif.time_varying_param = random_.Bernoulli(0.4);
    motif.base_param = static_cast<int>(random_.UniformRange(30, 80));
    motifs_.push_back(motif);
  }

  // Templates: each builds on a motif (Zipf again: hot motifs overlap more)
  // and adds a template-specific tail.
  templates_.reserve(static_cast<size_t>(profile_.num_templates));
  int pipeline_counter = 0;
  for (int t = 0; t < profile_.num_templates; ++t) {
    Template tmpl;
    tmpl.id = t;
    if (random_.Bernoulli(profile_.unshared_template_fraction)) {
      // Private computation: clone a motif shape nobody else uses. Its
      // subexpressions recur across instances of this one template only.
      Motif private_motif;
      private_motif.primary_dataset = static_cast<int>(random_.Zipf(
          static_cast<uint64_t>(profile_.num_shared_datasets),
          profile_.zipf_skew));
      private_motif.secondary_dataset =
          (private_motif.primary_dataset + 1 +
           static_cast<int>(random_.Uniform(
               static_cast<uint64_t>(profile_.num_shared_datasets - 1)))) %
          profile_.num_shared_datasets;
      private_motif.filter_category =
          static_cast<int>(random_.Uniform(kDim1Cardinality));
      private_motif.base_param = static_cast<int>(random_.UniformRange(30, 80));
      tmpl.motif = static_cast<int>(motifs_.size());
      motifs_.push_back(private_motif);
    } else {
      tmpl.motif = static_cast<int>(
          random_.Zipf(static_cast<uint64_t>(profile_.num_motifs), 1.0));
    }
    tmpl.virtual_cluster =
        static_cast<int>(random_.Uniform(
            static_cast<uint64_t>(profile_.num_virtual_clusters)));
    // Group a handful of templates per pipeline.
    if (t % 3 == 0) pipeline_counter += 1;
    tmpl.pipeline = pipeline_counter;
    if (random_.Bernoulli(0.35)) {
      tmpl.extra_dataset = static_cast<int>(random_.Zipf(
          static_cast<uint64_t>(profile_.num_shared_datasets),
          profile_.zipf_skew));
      tmpl.theta_join = random_.Bernoulli(profile_.theta_join_fraction / 0.35);
    }
    tmpl.agg_kind = static_cast<int>(random_.Uniform(4));
    tmpl.group_column = static_cast<int>(random_.Uniform(2));
    if (random_.Bernoulli(profile_.udo_fraction)) {
      tmpl.has_udo = true;
      if (random_.Bernoulli(profile_.nondeterministic_udo_fraction)) {
        tmpl.udo_deterministic = false;
      } else if (random_.Bernoulli(profile_.deep_dependency_udo_fraction)) {
        tmpl.udo_dependency_depth = 40;  // over the signature guard limit
      }
    }
    tmpl.bursty = random_.Bernoulli(profile_.burst_fraction);
    tmpl.submit_offset = random_.NextDouble() * 0.6 * kSecondsPerDay;
    // Narrowed templates: shared motif, strictly tighter dim2 bound. The
    // short-circuit on generalized_fraction keeps the random stream (and
    // therefore every pre-existing workload) untouched when the knob is 0.
    // Pinned to the hottest motifs so other (un-narrowed) templates share
    // the wide subtree — the view a narrowed instance can only reach
    // through containment.
    if (profile_.generalized_fraction > 0.0 &&
        tmpl.motif < profile_.num_motifs &&
        random_.Bernoulli(profile_.generalized_fraction)) {
      tmpl.narrow_delta = 5 + (t % 7) * 3;
      tmpl.motif = t % std::min(3, profile_.num_motifs);
      // Narrow probes trail the pipeline jobs they refine: remap the
      // already-drawn offset from [0, 0.6d) into the back of the day so the
      // shared wide subtree has materialized (and sealed) by the time a
      // containment match can use it. Pure transform — no extra draws, so
      // the random stream stays aligned with generalized_fraction == 0.
      tmpl.bursty = false;
      tmpl.submit_offset =
          0.55 * kSecondsPerDay + tmpl.submit_offset / 3.0;
    }
    templates_.push_back(tmpl);
  }
}

std::string WorkloadGenerator::DatasetName(int i) const {
  return profile_.cluster_name + "_ds" + std::to_string(i);
}

int WorkloadGenerator::num_pipelines() const {
  int max_pipeline = 0;
  for (const Template& t : templates_) {
    max_pipeline = std::max(max_pipeline, t.pipeline);
  }
  return max_pipeline;
}

std::vector<int> WorkloadGenerator::ConsumersOfDataset(int i) const {
  std::vector<int> out;
  for (const Template& t : templates_) {
    const Motif& motif = motifs_[static_cast<size_t>(t.motif)];
    if (motif.primary_dataset == i || motif.secondary_dataset == i ||
        t.extra_dataset == i) {
      out.push_back(t.id);
    }
  }
  return out;
}

TablePtr WorkloadGenerator::GenerateDataset(int index, int day) {
  // Content depends only on (profile seed, index, day): regenerating the
  // same day twice yields identical data, keeping paired simulations fair.
  Random rng(profile_.seed ^ Mix64(static_cast<uint64_t>(index) * 1000003 +
                                   static_cast<uint64_t>(day)));
  int rows = dataset_rows_[static_cast<size_t>(index)];
  auto table = std::make_shared<Table>(DatasetName(index), CookedSchema());
  table->Reserve(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    Row row;
    row.reserve(kNumCols);
    row.push_back(Value(static_cast<int64_t>(r)));
    row.push_back(Value(static_cast<int64_t>(rng.Uniform(kFkDomain))));
    row.push_back(Value("cat" + std::to_string(rng.Uniform(kDim1Cardinality))));
    row.push_back(Value(static_cast<int64_t>(rng.Uniform(kDim2Cardinality))));
    row.push_back(Value(rng.NextDouble() * 100.0));
    row.push_back(Value(rng.UniformRange(0, 1000)));
    table->Append(std::move(row)).ok();
  }
  return table;
}

Status WorkloadGenerator::Setup(DatasetCatalog* catalog) {
  for (int i = 0; i < profile_.num_shared_datasets; ++i) {
    Random guid_rng(profile_.seed ^ Mix64(static_cast<uint64_t>(i) + 17));
    CLOUDVIEWS_RETURN_NOT_OK(catalog->Register(
        DatasetName(i), GenerateDataset(i, 0), guid_rng.Guid()));
  }
  return Status::OK();
}

Status WorkloadGenerator::AdvanceDay(DatasetCatalog* catalog, int day,
                                     std::vector<std::string>* updated) {
  for (int i = 0; i < profile_.num_shared_datasets; ++i) {
    // Deterministic per (dataset, day) update decision.
    Random decide(profile_.seed ^
                  Mix64(static_cast<uint64_t>(i) * 7919 +
                        static_cast<uint64_t>(day) * 104729));
    if (!decide.Bernoulli(profile_.daily_update_fraction)) continue;
    CLOUDVIEWS_RETURN_NOT_OK(catalog->BulkUpdate(
        DatasetName(i), GenerateDataset(i, day), decide.Guid(),
        day * kSecondsPerDay));
    if (updated != nullptr) updated->push_back(DatasetName(i));
  }
  return Status::OK();
}

LogicalOpPtr WorkloadGenerator::BuildMotifPlan(const DatasetCatalog& catalog,
                                               const Motif& motif, int day,
                                               int narrow_delta) const {
  auto scan = [&](int index) -> LogicalOpPtr {
    auto dataset = catalog.Lookup(DatasetName(index));
    if (!dataset.ok()) return nullptr;
    return LogicalOp::Scan(DatasetName(index), dataset->guid,
                           dataset->table->schema());
  };
  LogicalOpPtr primary = scan(motif.primary_dataset);
  LogicalOpPtr secondary = scan(motif.secondary_dataset);
  if (primary == nullptr || secondary == nullptr) return nullptr;

  // Filter: dim1 = 'cat<k>' AND dim2 < p. The parameter p is shared by all
  // templates on this motif; for time-varying motifs it moves daily, which
  // changes strict signatures but not recurring ones.
  int param = motif.base_param;
  if (motif.time_varying_param) param = 20 + (motif.base_param + day * 7) % 60;
  // Narrowed templates keep dim2 strictly inside the shared bound, so their
  // motif subtree is contained in (but never equal to) the shared view.
  if (narrow_delta > 0) param = std::max(1, param - narrow_delta);
  ExprPtr predicate = Expr::MakeBinary(
      sql::BinaryOp::kAnd,
      Expr::MakeBinary(sql::BinaryOp::kEq, Col(kColDim1, "dim1"),
                       StrLit("cat" + std::to_string(motif.filter_category))),
      Expr::MakeBinary(sql::BinaryOp::kLt, Col(kColDim2, "dim2"),
                       IntLit(param)));
  LogicalOpPtr filtered = LogicalOp::Filter(primary, predicate);

  // Join with the secondary dataset. Alternate between a lookup-style join
  // (fk = id) and a many-to-many join (fk = fk) across motifs.
  bool lookup = motif.filter_category % 2 == 0;
  int right_key = lookup ? kColId : kColFk;
  ExprPtr condition = Expr::MakeBinary(
      sql::BinaryOp::kEq, Col(kColFk, "fk"),
      Col(kNumCols + right_key, lookup ? "id" : "fk"));
  return LogicalOp::Join(filtered, secondary, sql::JoinKind::kInner,
                         condition);
}

LogicalOpPtr WorkloadGenerator::InstantiateTemplate(
    const DatasetCatalog& catalog, const Template& tmpl, int day) const {
  const Motif& motif = motifs_[static_cast<size_t>(tmpl.motif)];
  LogicalOpPtr plan = BuildMotifPlan(catalog, motif, day, tmpl.narrow_delta);
  if (plan == nullptr) return nullptr;

  if (tmpl.extra_dataset >= 0) {
    auto dataset = catalog.Lookup(DatasetName(tmpl.extra_dataset));
    if (!dataset.ok()) return nullptr;
    LogicalOpPtr extra =
        LogicalOp::Scan(DatasetName(tmpl.extra_dataset), dataset->guid,
                        dataset->table->schema());
    int arity = static_cast<int>(plan->output_schema.num_columns());
    if (tmpl.theta_join) {
      // Theta join against a narrow slice of the extra dataset: no equi
      // keys, so only a nested-loop implementation is possible.
      LogicalOpPtr sliced = LogicalOp::Filter(
          extra, Expr::MakeBinary(sql::BinaryOp::kEq, Col(kColDim2, "dim2"),
                                  IntLit(tmpl.id % kDim2Cardinality)));
      ExprPtr condition = Expr::MakeBinary(
          sql::BinaryOp::kGt, Col(kColMetric2, "metric2"),
          Col(arity + kColMetric2, "metric2"));
      plan = LogicalOp::Join(plan, sliced, sql::JoinKind::kInner, condition);
    } else {
      ExprPtr condition =
          Expr::MakeBinary(sql::BinaryOp::kEq, Col(kColFk, "fk"),
                           Col(arity + kColId, "id"));
      plan = LogicalOp::Join(plan, extra, sql::JoinKind::kInner, condition);
    }
  }

  if (tmpl.has_udo) {
    std::string name = tmpl.udo_deterministic
                           ? "Extractor_t" + std::to_string(tmpl.motif)
                           : "Guid.NewGuid_t" + std::to_string(tmpl.id);
    plan = LogicalOp::Udo(plan, name, tmpl.udo_deterministic,
                          tmpl.udo_dependency_depth,
                          /*selectivity=*/0.8, /*cost_per_row=*/2.0);
  }

  // Aggregate tail (template-specific: this is where queries differ even
  // when they share the cooked motif underneath).
  int group_idx = tmpl.group_column == 0 ? kNumCols + kColDim1
                                         : kNumCols + kColDim2;
  std::vector<ExprPtr> keys = {
      Col(group_idx, tmpl.group_column == 0 ? "dim1" : "dim2")};
  AggregateSpec agg;
  agg.output_name = "agg0";
  switch (tmpl.agg_kind) {
    case 0:
      agg.func = AggFunc::kSum;
      agg.arg = Col(kColMetric1, "metric1");
      break;
    case 1:
      agg.func = AggFunc::kAvg;
      agg.arg = Col(kColMetric1, "metric1");
      break;
    case 2:
      agg.func = AggFunc::kCountStar;
      break;
    default:
      agg.func = AggFunc::kMax;
      agg.arg = Col(kColMetric2, "metric2");
      break;
  }
  return LogicalOp::Aggregate(plan, keys, {agg});
}

LogicalOpPtr WorkloadGenerator::BuildAdhocPlan(const DatasetCatalog& catalog,
                                               Random* rng) const {
  int index = static_cast<int>(
      rng->Uniform(static_cast<uint64_t>(profile_.num_shared_datasets)));
  auto dataset = catalog.Lookup(DatasetName(index));
  if (!dataset.ok()) return nullptr;
  LogicalOpPtr scan = LogicalOp::Scan(DatasetName(index), dataset->guid,
                                      dataset->table->schema());
  // Ad hoc analyses carry one-off literals, so their subexpressions repeat
  // with probability ~0.
  ExprPtr predicate = Expr::MakeBinary(
      sql::BinaryOp::kGt, Col(kColMetric1, "metric1"),
      Expr::MakeLiteral(Value(rng->NextDouble() * 100.0)));
  LogicalOpPtr filtered = LogicalOp::Filter(scan, predicate);
  std::vector<ExprPtr> keys = {Col(kColDim1, "dim1")};
  AggregateSpec agg;
  agg.func = AggFunc::kCount;
  agg.arg = Col(kColId, "id");
  agg.output_name = "n";
  return LogicalOp::Aggregate(filtered, keys, {agg});
}

std::vector<GeneratedJob> WorkloadGenerator::JobsForDay(
    const DatasetCatalog& catalog, int day) {
  std::vector<GeneratedJob> jobs;
  Random day_rng(profile_.seed ^ Mix64(static_cast<uint64_t>(day) + 999331));
  double day_start = day * kSecondsPerDay;

  for (const Template& tmpl : templates_) {
    for (int k = 0; k < profile_.instances_per_template_per_day; ++k) {
      GeneratedJob job;
      job.job_id = next_job_id_++;
      job.template_id = tmpl.id;
      job.pipeline_id = tmpl.pipeline;
      job.virtual_cluster = "vc" + std::to_string(tmpl.virtual_cluster);
      job.day = day;
      if (tmpl.bursty) {
        // Burst at period start: every instance lands within the window.
        job.submit_time = day_start + 300.0 +
                          day_rng.NextDouble() * profile_.burst_window_seconds;
      } else {
        double spacing =
            0.35 * kSecondsPerDay /
            std::max(1, profile_.instances_per_template_per_day);
        job.submit_time = day_start + tmpl.submit_offset + k * spacing +
                          day_rng.NextDouble() * 600.0;
      }
      job.plan = InstantiateTemplate(catalog, tmpl, day);
      if (job.plan != nullptr) jobs.push_back(std::move(job));
    }
  }

  // Ad hoc (non-recurring) jobs.
  int recurring = static_cast<int>(jobs.size());
  int adhoc = static_cast<int>(
      std::round(recurring * profile_.adhoc_fraction /
                 std::max(1e-9, 1.0 - profile_.adhoc_fraction)));
  for (int i = 0; i < adhoc; ++i) {
    GeneratedJob job;
    job.job_id = next_job_id_++;
    job.template_id = -1;
    job.pipeline_id = -1;
    job.virtual_cluster =
        "vc" + std::to_string(day_rng.Uniform(
                   static_cast<uint64_t>(profile_.num_virtual_clusters)));
    job.day = day;
    job.submit_time = day_start + day_rng.NextDouble() * 0.95 * kSecondsPerDay;
    job.plan = BuildAdhocPlan(catalog, &day_rng);
    if (job.plan != nullptr) jobs.push_back(std::move(job));
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const GeneratedJob& a, const GeneratedJob& b) {
              return a.submit_time < b.submit_time;
            });
  return jobs;
}

}  // namespace cloudviews
