#ifndef CLOUDVIEWS_WORKLOAD_PROFILES_H_
#define CLOUDVIEWS_WORKLOAD_PROFILES_H_

#include <vector>

#include "workload/generator.h"

namespace cloudviews {

// Profiles for the five production clusters analyzed in Figures 2, 3 and 8.
// Cluster1 feeds the Asimov-style telemetry platform and shows much heavier
// dataset sharing (10% of its inputs have >16 distinct consumers); the other
// clusters are progressively less shared.
std::vector<WorkloadProfile> FiveClusterProfiles();

// The two-month production deployment profile behind Table 1 and Figures 6
// and 7: 21 opted-in virtual clusters running recurring pipelines.
// `scale` in (0, 1] shrinks the workload proportionally for fast tests.
WorkloadProfile ProductionDeploymentProfile(double scale = 1.0);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_WORKLOAD_PROFILES_H_
