#ifndef CLOUDVIEWS_WORKLOAD_EXPERIMENT_H_
#define CLOUDVIEWS_WORKLOAD_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "cluster/telemetry.h"
#include "core/view_selection.h"
#include "core/workload_repository.h"
#include "workload/generator.h"

namespace cloudviews {

// Configuration of a paired (baseline vs CloudViews) deployment simulation —
// the experimental design behind Table 1 and Figures 6/7. The same
// deterministic workload runs through two independent engine+cluster stacks;
// the only difference is whether the virtual clusters are onboarded.
struct ExperimentConfig {
  WorkloadProfile workload;
  ClusterSimOptions cluster;
  ReuseEngineOptions engine;
  int num_days = 58;  // 2020-02-01 .. 2020-03-29
  // Customer onboarding ramp: VC k is enabled starting on day
  // k * onboarding_days_per_vc (opt-in arriving gradually, Figure 6a).
  int onboarding_days_per_vc = 1;
  bool collect_join_records = true;
  // Build the insights export for the CloudViews arm: enables the
  // provenance ledger (process-wide), attaches an hourly time-series
  // collector to the simulator, and fills ArmResult::insights_json.
  bool collect_insights = false;
  // Record reuse decision provenance for the CloudViews arm: enables the
  // decision ledger (process-wide gate, like the provenance ledger) and
  // fills ArmResult::decisions_json with the explain export. Implied by
  // collect_insights — the insights bundle carries the miss-attribution
  // table, so decisions must be on whenever insights are.
  bool collect_decisions = false;
  // Restricts the traces in ArmResult::decisions_json to one job id
  // (--explain=<job_id>); -1 exports every job (--explain=all). The miss
  // table and totals always cover the whole run.
  int64_t explain_job_filter = -1;
  // When engine.enable_sharing is set, the CloudViews arm groups jobs whose
  // submissions fall within this many simulated seconds of the window's
  // first job into one sharing window (ReuseEngine::RunSharedWindow) instead
  // of running them serially. Outputs stay byte-identical either way.
  double sharing_window_seconds = 60.0;
  // Progress callback (day index) for long benches; may be null.
  std::function<void(int)> on_day_complete;
};

// One simulation arm's outputs.
struct ArmResult {
  TelemetrySeries telemetry;
  int64_t views_created = 0;
  int64_t views_reused = 0;
  double percent_repeated_subexpressions = 0.0;
  double average_repeat_frequency = 0.0;
  int64_t total_subexpression_instances = 0;
  std::vector<JoinExecutionRecord> join_records;
  int64_t failed_jobs = 0;
  // Work-sharing telemetry (zero unless engine.enable_sharing ran windows).
  sharing::SharingStats sharing;
  // BuildInsightsJson document (CloudViews arm with collect_insights only).
  std::string insights_json;
  // DecisionLedger::ExportJson document (CloudViews arm with
  // collect_decisions or collect_insights only).
  std::string decisions_json;
};

struct ExperimentResult {
  ArmResult baseline;
  ArmResult cloudviews;
  int num_pipelines = 0;
  int num_virtual_clusters = 0;
  int64_t num_jobs = 0;
};

// Runs the paired production-deployment simulation.
class ProductionExperiment {
 public:
  explicit ProductionExperiment(ExperimentConfig config)
      : config_(std::move(config)) {}

  Result<ExperimentResult> Run();

 private:
  Result<ArmResult> RunArm(bool cloudviews_enabled);

  ExperimentConfig config_;
};

// Pretty-print helpers shared by the bench binaries.
std::string FormatImprovementRow(const std::string& metric, double baseline,
                                 double with_feature, const char* unit);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_WORKLOAD_EXPERIMENT_H_
