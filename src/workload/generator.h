#ifndef CLOUDVIEWS_WORKLOAD_GENERATOR_H_
#define CLOUDVIEWS_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "common/random.h"
#include "common/status.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace cloudviews {

// Statistical shape of one production cluster's workload. Defaults are
// calibrated so generated workloads reproduce the paper's distributional
// facts: ~80% recurring jobs, >75% repeated subexpressions, average repeat
// frequency ~5, and more than half of the datasets having multiple distinct
// consumers (Figures 2 and 3).
struct WorkloadProfile {
  std::string cluster_name = "cluster1";
  uint64_t seed = 42;

  int num_virtual_clusters = 5;
  int num_shared_datasets = 40;   // cooked datasets in the store
  int num_motifs = 24;            // shared subexpression building blocks
  int num_templates = 48;         // recurring job templates
  int instances_per_template_per_day = 2;
  // Fraction of templates whose computation is private (no cross-template
  // sharing): recurring work that CloudViews cannot help, diluting the
  // cluster-wide improvements exactly as unshared pipelines do in
  // production.
  double unshared_template_fraction = 0.2;
  double adhoc_fraction = 0.2;    // non-recurring one-off jobs
  double zipf_skew = 1.05;        // dataset popularity skew
  int min_rows = 300;
  int max_rows = 2500;
  // Fraction of templates whose instances are submitted in a burst at the
  // start of the day (the schedule-aware challenge from section 4).
  double burst_fraction = 0.2;
  double burst_window_seconds = 120.0;
  // Fraction of templates whose tail is a theta join (no equi keys), which
  // the optimizer can only execute as a nested-loop join.
  double theta_join_fraction = 0.12;
  // UDO usage.
  double udo_fraction = 0.2;                  // templates containing a UDO
  double nondeterministic_udo_fraction = 0.2; // of those, non-deterministic
  double deep_dependency_udo_fraction = 0.1;  // of those, over-deep deps
  // Fraction of shared datasets bulk-regenerated each day (sliding windows
  // mean most inputs change daily in Cosmos cooking pipelines).
  double daily_update_fraction = 0.8;
  // Fraction of shared-motif templates whose motif filter is *narrowed*
  // (dim2 < p - delta instead of dim2 < p). Their motif subtrees never
  // exact-match the shared view other templates materialize, but are
  // strictly contained in it — exactly the shape generalized view matching
  // recovers with a residual filter. Zero (the default) consumes no
  // randomness, keeping pre-existing workloads byte-identical.
  double generalized_fraction = 0.0;
};

// Generates the shared-dataset store and the recurring job stream for one
// simulated cluster. Deterministic for a fixed profile.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadProfile profile);

  // Creates and registers the day-0 version of every shared dataset.
  Status Setup(DatasetCatalog* catalog);

  // Bulk-regenerates the day's updated datasets (fresh GUIDs + new data),
  // mirroring the daily cooking runs. Call at the start of each day >= 1.
  // Names of updated datasets are appended to *updated when non-null (the
  // view manager reclaims views reading them).
  Status AdvanceDay(DatasetCatalog* catalog, int day,
                    std::vector<std::string>* updated = nullptr);

  // Generates the day's jobs (bound against the catalog's current dataset
  // versions), sorted by submit time.
  std::vector<GeneratedJob> JobsForDay(const DatasetCatalog& catalog, int day);

  const WorkloadProfile& profile() const { return profile_; }
  int num_pipelines() const;

  // Dataset name for index i (exposed for analysis benches).
  std::string DatasetName(int i) const;

  // Which template ids read dataset i (distinct consumers, Figure 2).
  std::vector<int> ConsumersOfDataset(int i) const;

 private:
  // A reusable subexpression motif: two datasets joined after a filter.
  // Every template built on the same motif compiles to the same sub-plan,
  // which is exactly what CloudViews discovers and materializes.
  struct Motif {
    int primary_dataset = 0;
    int secondary_dataset = 0;
    int filter_category = 0;       // dim1 = 'cat<k>'
    bool time_varying_param = false;  // dim2 < p where p changes daily
    int base_param = 50;
  };

  // A recurring job template: a motif plus a template-specific tail.
  struct Template {
    int id = 0;
    int motif = 0;
    int virtual_cluster = 0;
    int pipeline = 0;
    int extra_dataset = -1;        // optional third join
    bool theta_join = false;       // extra join is a theta (loop-only) join
    int agg_kind = 0;              // which aggregate tail to build
    int group_column = 0;
    bool has_udo = false;
    bool udo_deterministic = true;
    int udo_dependency_depth = 2;
    bool bursty = false;           // submitted at period start
    double submit_offset = 0.0;    // seconds into the day
    // Narrowing offset applied to the motif's dim2 bound (0 = exact motif).
    // Varied per template so narrowed instances don't form their own large
    // exact-match groups; each stays contained in the shared motif's view.
    int narrow_delta = 0;
  };

  TablePtr GenerateDataset(int index, int day);
  LogicalOpPtr BuildMotifPlan(const DatasetCatalog& catalog,
                              const Motif& motif, int day,
                              int narrow_delta) const;
  LogicalOpPtr InstantiateTemplate(const DatasetCatalog& catalog,
                                   const Template& tmpl, int day) const;
  LogicalOpPtr BuildAdhocPlan(const DatasetCatalog& catalog, Random* rng) const;

  WorkloadProfile profile_;
  Random random_;
  std::vector<Motif> motifs_;
  std::vector<Template> templates_;
  std::vector<int> dataset_rows_;  // base row count per dataset
  int64_t next_job_id_ = 1;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_WORKLOAD_GENERATOR_H_
