#include "workload/profiles.h"

#include <algorithm>
#include <cmath>

namespace cloudviews {

std::vector<WorkloadProfile> FiveClusterProfiles() {
  std::vector<WorkloadProfile> profiles(5);
  for (int i = 0; i < 5; ++i) {
    WorkloadProfile& p = profiles[static_cast<size_t>(i)];
    p.cluster_name = "cluster" + std::to_string(i + 1);
    p.seed = 1000 + static_cast<uint64_t>(i);
    p.num_virtual_clusters = 6;
    p.num_shared_datasets = 60;
    p.num_motifs = 40;
    p.num_templates = 120;
    p.instances_per_template_per_day = 2;
  }
  // Cluster1 (Asimov-style): few very hot datasets feed hundreds of
  // consumers — steep Zipf, many more consumers per dataset. Clusters 2-5
  // have progressively flatter popularity and fewer downstream consumers.
  const double kSkews[] = {1.45, 1.2, 1.05, 0.95, 0.85};
  const int kTemplates[] = {220, 160, 125, 105, 90};
  const int kDatasets[] = {50, 55, 58, 60, 62};
  for (int i = 0; i < 5; ++i) {
    profiles[static_cast<size_t>(i)].zipf_skew = kSkews[i];
    profiles[static_cast<size_t>(i)].num_templates = kTemplates[i];
    profiles[static_cast<size_t>(i)].num_shared_datasets = kDatasets[i];
  }
  return profiles;
}

WorkloadProfile ProductionDeploymentProfile(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  WorkloadProfile p;
  p.cluster_name = "cosmos_prod";
  p.seed = 20200201;  // the window starts 2020-02-01
  p.num_virtual_clusters = std::max(2, static_cast<int>(21 * scale));
  p.num_shared_datasets = std::max(10, static_cast<int>(80 * scale));
  p.num_motifs = std::max(5, static_cast<int>(34 * scale));
  // ~5 templates per motif so each materialized view is reused about six
  // times per day on average (Table 1: 58k views built, 345k reused).
  p.num_templates = std::max(12, static_cast<int>(168 * scale));
  p.instances_per_template_per_day = 3;
  p.adhoc_fraction = 0.2;  // ~80% of jobs recurring
  p.zipf_skew = 1.1;
  p.burst_fraction = 0.15;
  p.udo_fraction = 0.2;
  return p;
}

}  // namespace cloudviews
