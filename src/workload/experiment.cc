#include "workload/experiment.h"

#include <cstdio>

#include "core/insights_report.h"
#include "obs/decision.h"
#include "obs/log.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace cloudviews {

Result<ArmResult> ProductionExperiment::RunArm(bool cloudviews_enabled) {
  obs::Span arm_span("simulate-arm", "sim");
  arm_span.Arg("cloudviews",
               static_cast<int64_t>(cloudviews_enabled ? 1 : 0));
  // Fresh deterministic stack per arm: same data, same jobs, same order.
  DatasetCatalog catalog;
  WorkloadGenerator generator(config_.workload);
  CLOUDVIEWS_RETURN_NOT_OK(generator.Setup(&catalog));

  ReuseEngineOptions engine_options = config_.engine;
  engine_options.cluster_name = config_.workload.cluster_name;
  ReuseEngine engine(&catalog, engine_options);
  const bool insights = cloudviews_enabled && config_.collect_insights;
  const bool decisions =
      cloudviews_enabled &&
      (config_.collect_decisions || config_.collect_insights);
  if (insights) obs::ProvenanceLedger::Enable();
  if (decisions) obs::DecisionLedger::Enable();
  obs::TimeSeriesCollector timeseries;
  ClusterSimOptions cluster_options = config_.cluster;
  if (insights) cluster_options.timeseries = &timeseries;
  ClusterSimulator simulator(&engine, cluster_options);

  ArmResult arm;
  for (int day = 0; day < config_.num_days; ++day) {
    obs::Span day_span("day", "sim");
    day_span.Arg("day", static_cast<int64_t>(day));
    if (day > 0) {
      std::vector<std::string> updated;
      CLOUDVIEWS_RETURN_NOT_OK(generator.AdvanceDay(&catalog, day, &updated));
      for (const std::string& name : updated) {
        engine.OnDatasetUpdated(name);
      }
    }
    engine.Maintenance(day * kSecondsPerDay);

    if (cloudviews_enabled) {
      // Opt-in onboarding ramp: one more VC joins every few days.
      int enabled_vcs = config_.onboarding_days_per_vc <= 0
                            ? config_.workload.num_virtual_clusters
                            : std::min(config_.workload.num_virtual_clusters,
                                       1 + day / config_.onboarding_days_per_vc);
      for (int vc = 0; vc < enabled_vcs; ++vc) {
        engine.insights().controls().enabled_vcs.insert(
            "vc" + std::to_string(vc));
      }
      // Periodic workload analysis + view selection over history so far.
      engine.RunViewSelection(day * kSecondsPerDay);
    }

    std::vector<GeneratedJob> jobs_today = generator.JobsForDay(catalog, day);
    const bool sharing =
        cloudviews_enabled && engine_options.enable_sharing;
    if (!sharing) {
      for (const GeneratedJob& job : jobs_today) {
        auto telemetry = simulator.SubmitJob(job);
        if (!telemetry.ok()) {
          arm.failed_jobs += 1;
          obs::LogWarn("experiment", "job_failed",
                       {{"job_id", job.job_id},
                        {"day", day},
                        {"error", telemetry.status().message()}});
        }
      }
    } else {
      // Group bursts of arrivals into sharing windows: every job submitted
      // within sharing_window_seconds of the window's first job shares it.
      for (size_t i = 0; i < jobs_today.size();) {
        size_t j = i + 1;
        while (j < jobs_today.size() &&
               jobs_today[j].submit_time - jobs_today[i].submit_time <=
                   config_.sharing_window_seconds) {
          ++j;
        }
        std::vector<GeneratedJob> window(jobs_today.begin() + i,
                                         jobs_today.begin() + j);
        auto telemetry = simulator.SubmitSharedWindow(window);
        if (!telemetry.ok()) {
          arm.failed_jobs += static_cast<int64_t>(window.size());
          obs::LogWarn("experiment", "window_failed",
                       {{"day", day},
                        {"jobs", static_cast<int64_t>(window.size())},
                        {"error", telemetry.status().message()}});
        } else {
          for (const JobTelemetry& t : *telemetry) {
            if (t.failed) arm.failed_jobs += 1;
          }
        }
        i = j;
      }
    }
    if (obs::Logger::Global().ShouldLog(obs::LogLevel::kDebug)) {
      obs::LogDebug("experiment", "day_complete",
                    {{"day", day},
                     {"arm", cloudviews_enabled ? "cloudviews" : "baseline"},
                     {"failed_jobs", arm.failed_jobs}});
    }
    if (config_.on_day_complete) config_.on_day_complete(day);
  }

  arm.telemetry = simulator.telemetry();
  arm.sharing = engine.sharing_stats();
  arm.views_created = engine.view_store().total_views_created();
  arm.views_reused = engine.view_store().total_views_reused();
  arm.percent_repeated_subexpressions = engine.repository().PercentRepeated();
  arm.average_repeat_frequency = engine.repository().AverageRepeatFrequency();
  arm.total_subexpression_instances = engine.repository().total_instances();
  if (config_.collect_join_records) {
    arm.join_records = simulator.join_records();
  }
  if (insights) {
    double end_of_run = config_.num_days * kSecondsPerDay;
    simulator.SampleUpTo(end_of_run);  // flush the final partial interval
    InsightsExportMeta meta;
    meta.cluster = config_.workload.cluster_name;
    meta.days = config_.num_days;
    meta.jobs = static_cast<int64_t>(arm.telemetry.jobs().size());
    meta.failed_jobs = arm.failed_jobs;
    meta.num_virtual_clusters = config_.workload.num_virtual_clusters;
    meta.now = end_of_run;
    arm.insights_json = BuildInsightsJson(engine, &timeseries, meta);
  }
  if (decisions) {
    arm.decisions_json =
        engine.decisions().ExportJson(config_.explain_job_filter);
  }
  return arm;
}

Result<ExperimentResult> ProductionExperiment::Run() {
  ExperimentResult result;
  auto baseline = RunArm(/*cloudviews_enabled=*/false);
  if (!baseline.ok()) return baseline.status();
  result.baseline = std::move(baseline).value();
  auto cloudviews = RunArm(/*cloudviews_enabled=*/true);
  if (!cloudviews.ok()) return cloudviews.status();
  result.cloudviews = std::move(cloudviews).value();

  WorkloadGenerator generator(config_.workload);
  result.num_pipelines = generator.num_pipelines();
  result.num_virtual_clusters = config_.workload.num_virtual_clusters;
  result.num_jobs = static_cast<int64_t>(result.cloudviews.telemetry.jobs().size());
  return result;
}

std::string FormatImprovementRow(const std::string& metric, double baseline,
                                 double with_feature, const char* unit) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-28s %14.1f %14.1f %s %9.2f%%",
                metric.c_str(), baseline, with_feature, unit,
                ImprovementPercent(baseline, with_feature));
  return buf;
}

}  // namespace cloudviews
