#include "core/insights_report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/decision.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"

namespace cloudviews {

namespace {

// Per-virtual-cluster roll-up of ledger streams (the paper's per-customer
// savings attribution).
struct VcTotals {
  int64_t streams = 0;
  int64_t sealed = 0;
  int64_t hits = 0;
  double attributed_savings = 0.0;
  double build_cost = 0.0;
  double storage_rent = 0.0;
};

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

std::string BuildInsightsJson(const ReuseEngine& engine,
                              const obs::TimeSeriesCollector* timeseries,
                              const InsightsExportMeta& meta,
                              double rent_per_byte_second) {
  const obs::ProvenanceLedger& ledger = engine.provenance();
  obs::LedgerTotals totals = ledger.Totals(meta.now, rent_per_byte_second);
  const ViewStore& store = engine.view_store();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("meta");
  w.BeginObject();
  w.Field("cluster", meta.cluster);
  w.Field("days", meta.days);
  w.Field("jobs", meta.jobs);
  w.Field("failed_jobs", meta.failed_jobs);
  w.Field("virtual_clusters", meta.num_virtual_clusters);
  w.Field("now", meta.now);
  w.Field("provenance_enabled", obs::ProvenanceLedger::Enabled());
  w.EndObject();

  // Table-1-shaped summary: workload repetition, view lifecycle counts,
  // storage position, and the savings attribution bottom line.
  w.Key("summary");
  w.BeginObject();
  w.Field("views_created", store.total_views_created());
  w.Field("views_reused", store.total_views_reused());
  w.Field("views_quarantined", store.total_views_quarantined());
  w.Field("views_live", static_cast<uint64_t>(store.NumLive()));
  w.Field("storage_used_bytes", static_cast<uint64_t>(store.TotalBytes()));
  w.Field("storage_budget_bytes",
          engine.options().selection.storage_budget_bytes);
  w.Field("sealed_views", totals.sealed_views);
  w.Field("reused_views", totals.reused_views);
  w.Field("hits", totals.hits);
  w.Field("hits_exact", engine.hits_exact());
  w.Field("hits_subsumed", engine.hits_subsumed());
  w.Field("aborts", totals.aborts);
  w.Field("bytes_spooled", totals.bytes_spooled);
  w.Field("build_cost", totals.build_cost);
  w.Field("attributed_savings", totals.attributed_savings);
  w.Field("rows_avoided", totals.rows_avoided);
  w.Field("bytes_avoided", totals.bytes_avoided);
  w.Field("storage_rent", totals.storage_rent);
  w.Field("net_savings", totals.net_savings);
  w.Field("negative_utility_views", totals.negative_utility_views);
  w.Field("percent_repeated_subexpressions",
          engine.repository().PercentRepeated());
  w.Field("average_repeat_frequency",
          engine.repository().AverageRepeatFrequency());
  w.Field("subexpression_instances", engine.repository().total_instances());
  w.Field("annotation_fetches", engine.insights().fetch_count());
  w.Field("annotations_published",
          static_cast<uint64_t>(engine.insights().num_annotations()));
  w.EndObject();

  // Work-sharing roll-up: what the in-flight streams saved, next to (and in
  // the same cost units as) the view-reuse attribution above.
  const sharing::SharingStats& sharing = engine.sharing_stats();
  w.Key("sharing");
  w.BeginObject();
  w.Field("windows", sharing.windows);
  w.Field("streams", sharing.streams);
  w.Field("fanout", sharing.fanout);
  w.Field("hits", sharing.hits);
  w.Field("detaches", sharing.detaches);
  w.Field("producer_aborts", sharing.producer_aborts);
  w.Field("batches_produced", sharing.batches_produced);
  w.Field("rows_shared", sharing.rows_shared);
  w.Field("bytes_shared", sharing.bytes_shared);
  w.Field("producer_cost", sharing.producer_cpu_cost);
  w.Field("saved_cost", sharing.saved_cost);
  w.EndObject();

  // Per-VC attribution (std::map: stable key order in the export).
  std::map<std::string, VcTotals> per_vc;
  for (const obs::ViewStream& stream : ledger.Streams()) {
    obs::ViewAggregates agg = obs::ProvenanceLedger::Aggregate(
        stream, meta.now, rent_per_byte_second);
    VcTotals& vc = per_vc[stream.virtual_cluster];
    vc.streams += 1;
    if (agg.sealed) vc.sealed += 1;
    vc.hits += agg.hits;
    vc.attributed_savings += agg.attributed_savings;
    vc.build_cost += agg.build_cost;
    vc.storage_rent += agg.storage_rent;
  }
  w.Key("per_vc");
  w.BeginObject();
  for (const auto& [name, vc] : per_vc) {
    w.Key(name);
    w.BeginObject();
    w.Field("streams", vc.streams);
    w.Field("sealed_views", vc.sealed);
    w.Field("hits", vc.hits);
    w.Field("attributed_savings", vc.attributed_savings);
    w.Field("build_cost", vc.build_cost);
    w.Field("storage_rent", vc.storage_rent);
    w.Field("net_savings",
            vc.attributed_savings - vc.build_cost - vc.storage_rent);
    w.EndObject();
  }
  w.EndObject();

  // Reuse decision provenance: the fleet-wide miss-attribution table
  // (foregone savings bucketed by reason × match class) and hit/miss grand
  // totals, in the same cost units as the savings attribution above. Null
  // when the decision ledger was not enabled for this run.
  w.Key("decisions");
  if (obs::DecisionLedger::Enabled()) {
    const obs::DecisionLedger& decisions = engine.decisions();
    obs::DecisionTotals decision_totals = decisions.Totals();
    w.BeginObject();
    w.Key("totals");
    w.BeginObject();
    w.Field("jobs", decision_totals.jobs);
    w.Field("events", decision_totals.events);
    w.Field("hits", decision_totals.hits);
    w.Field("misses", decision_totals.misses);
    w.Field("realized_saving", decision_totals.realized_saving);
    w.Field("foregone_saving", decision_totals.foregone_saving);
    w.EndObject();
    w.Key("miss_attribution");
    w.BeginArray();
    for (const obs::MissBucket& bucket : decisions.MissAttribution()) {
      w.BeginObject();
      w.Field("reason", obs::DecisionReasonName(bucket.reason));
      w.Field("match_class", bucket.match_class.ToHex());
      w.Field("events", bucket.events);
      w.Field("foregone_saving", bucket.foregone_saving);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  } else {
    w.Null();
  }

  w.Key("ledger");
  w.RawValue(ledger.ExportJson(meta.now, rent_per_byte_second));
  w.Key("series");
  if (timeseries != nullptr) {
    w.RawValue(timeseries->ExportJson());
  } else {
    w.Null();
  }
  w.EndObject();
  return w.TakeString();
}

Result<std::string> RenderInsightsReport(std::string_view insights_json,
                                         const InsightsReportOptions& options) {
  auto parsed = obs::ParseJson(insights_json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = *parsed;
  const obs::JsonValue* meta = root.Find("meta");
  const obs::JsonValue* summary = root.Find("summary");
  const obs::JsonValue* ledger = root.Find("ledger");
  if (meta == nullptr || summary == nullptr || ledger == nullptr) {
    return Status::InvalidArgument(
        "not an insights document: missing meta/summary/ledger");
  }

  std::string out;
  out += "CloudViews insights report\n";
  out += "==========================\n";
  AppendF(&out,
          "cluster %s: %lld simulated days, %lld jobs (%lld failed), "
          "%lld virtual clusters\n",
          meta->GetString("cluster").c_str(),
          static_cast<long long>(meta->GetInt("days")),
          static_cast<long long>(meta->GetInt("jobs")),
          static_cast<long long>(meta->GetInt("failed_jobs")),
          static_cast<long long>(meta->GetInt("virtual_clusters")));
  const obs::JsonValue* ledger_totals = ledger->Find("totals");
  AppendF(&out, "ledger: %lld streams, %lld dropped events\n\n",
          static_cast<long long>(
              ledger_totals != nullptr ? ledger_totals->GetInt("streams") : 0),
          static_cast<long long>(ledger->GetInt("dropped_events")));

  out += "Summary\n";
  auto int_row = [&out, summary](const char* label, const char* key) {
    AppendF(&out, "  %-32s %lld\n", label,
            static_cast<long long>(summary->GetInt(key)));
  };
  auto num_row = [&out, summary](const char* label, const char* key) {
    AppendF(&out, "  %-32s %.2f\n", label, summary->GetNumber(key));
  };
  int_row("views sealed", "sealed_views");
  int_row("views live at end", "views_live");
  int_row("views reused (>=1 hit)", "reused_views");
  int_row("reuse hits", "hits");
  // The exact/subsumed split rides newer exports only; older documents
  // simply skip the rows rather than report a fake zero.
  if (summary->Find("hits_exact") != nullptr) {
    int_row("  exact-signature hits", "hits_exact");
    int_row("  subsumed (generalized) hits", "hits_subsumed");
  }
  int_row("aborted materializations", "aborts");
  int_row("views quarantined", "views_quarantined");
  int_row("bytes spooled", "bytes_spooled");
  int_row("storage used (bytes)", "storage_used_bytes");
  int_row("storage budget (bytes)", "storage_budget_bytes");
  num_row("build cost", "build_cost");
  num_row("attributed savings", "attributed_savings");
  num_row("storage rent", "storage_rent");
  num_row("net savings", "net_savings");
  int_row("negative-utility views", "negative_utility_views");
  AppendF(&out, "  %-32s %.1f%%\n", "repeated subexpressions",
          summary->GetNumber("percent_repeated_subexpressions"));
  num_row("avg repeat frequency", "average_repeat_frequency");
  int_row("subexpression instances", "subexpression_instances");
  int_row("annotation fetches", "annotation_fetches");
  out += "\n";

  // Rank sealed views by net utility (tie-broken by signature so the order
  // is total, keeping reruns byte-identical).
  struct ViewRow {
    std::string strict;
    std::string vc;
    int64_t hits = 0;
    double savings = 0.0;
    double build = 0.0;
    double rent = 0.0;
    double net = 0.0;
    bool live = false;
  };
  std::vector<ViewRow> sealed_rows;
  const obs::JsonValue* views = ledger->Find("views");
  if (views != nullptr && views->is_array()) {
    for (const obs::JsonValue& view : views->items) {
      const obs::JsonValue* agg = view.Find("aggregates");
      if (agg == nullptr || !agg->GetBool("sealed")) continue;
      ViewRow row;
      row.strict = view.GetString("strict");
      row.vc = view.GetString("virtual_cluster");
      row.hits = agg->GetInt("hits");
      row.savings = agg->GetNumber("attributed_savings");
      row.build = agg->GetNumber("build_cost");
      row.rent = agg->GetNumber("storage_rent");
      row.net = agg->GetNumber("net_utility");
      row.live = agg->GetBool("live");
      sealed_rows.push_back(std::move(row));
    }
  }
  std::sort(sealed_rows.begin(), sealed_rows.end(),
            [](const ViewRow& a, const ViewRow& b) {
              if (a.net != b.net) return a.net > b.net;
              return a.strict < b.strict;
            });

  AppendF(&out, "Top %d views by net utility\n", options.top_n);
  AppendF(&out, "  %4s  %-18s %-6s %5s %12s %10s %10s %12s\n", "#",
          "strict", "vc", "hits", "savings", "build", "rent", "net");
  if (sealed_rows.empty()) out += "  (no sealed views)\n";
  for (size_t i = 0;
       i < sealed_rows.size() && i < static_cast<size_t>(options.top_n);
       ++i) {
    const ViewRow& row = sealed_rows[i];
    AppendF(&out, "  %4zu  %-18s %-6s %5lld %12.2f %10.2f %10.2f %12.2f\n",
            i + 1, row.strict.substr(0, 16).c_str(), row.vc.c_str(),
            static_cast<long long>(row.hits), row.savings, row.build,
            row.rent, row.net);
  }
  out += "\n";

  // Older exports predate work sharing; skip the section rather than fail.
  const obs::JsonValue* sharing = root.Find("sharing");
  if (sharing != nullptr && sharing->is_object()) {
    out += "Work sharing (in-flight streams)\n";
    auto sh_int = [&out, sharing](const char* label, const char* key) {
      AppendF(&out, "  %-32s %lld\n", label,
              static_cast<long long>(sharing->GetInt(key)));
    };
    sh_int("sharing windows", "windows");
    sh_int("producer streams", "streams");
    sh_int("subscriber fanout", "fanout");
    sh_int("subscribers served (hits)", "hits");
    sh_int("subscriber detaches", "detaches");
    sh_int("producer aborts", "producer_aborts");
    sh_int("batches forwarded", "batches_produced");
    sh_int("rows shared", "rows_shared");
    sh_int("bytes shared", "bytes_shared");
    AppendF(&out, "  %-32s %.2f\n", "sharing saved cost",
            sharing->GetNumber("saved_cost"));
    out += "\n";
  }

  // Decision provenance roll-up: what reuse left on the table, and why.
  // Null/absent when the run did not enable the decision ledger.
  const obs::JsonValue* decisions = root.Find("decisions");
  if (decisions != nullptr && decisions->is_object()) {
    const obs::JsonValue* totals = decisions->Find("totals");
    out += "Reuse decisions (miss attribution)\n";
    if (totals != nullptr) {
      AppendF(&out,
              "  %lld jobs traced, %lld events: %lld hits "
              "(%.2f saved), %lld misses (%.2f foregone)\n",
              static_cast<long long>(totals->GetInt("jobs")),
              static_cast<long long>(totals->GetInt("events")),
              static_cast<long long>(totals->GetInt("hits")),
              totals->GetNumber("realized_saving"),
              static_cast<long long>(totals->GetInt("misses")),
              totals->GetNumber("foregone_saving"));
    }
    AppendF(&out, "  %-28s %-18s %8s %14s\n", "reason", "match_class",
            "events", "foregone");
    const obs::JsonValue* buckets = decisions->Find("miss_attribution");
    bool any_bucket = false;
    if (buckets != nullptr && buckets->is_array()) {
      for (size_t i = 0;
           i < buckets->items.size() && i < static_cast<size_t>(options.top_n);
           ++i) {
        const obs::JsonValue& bucket = buckets->items[i];
        any_bucket = true;
        AppendF(&out, "  %-28s %-18s %8lld %14.2f\n",
                bucket.GetString("reason").c_str(),
                bucket.GetString("match_class").substr(0, 16).c_str(),
                static_cast<long long>(bucket.GetInt("events")),
                bucket.GetNumber("foregone_saving"));
      }
    }
    if (!any_bucket) out += "  (no miss buckets)\n";
    out += "\n";
  }

  out += "Negative-utility views (cost more than they saved)\n";
  bool any_negative = false;
  for (auto it = sealed_rows.rbegin(); it != sealed_rows.rend(); ++it) {
    if (it->net >= 0.0) break;
    any_negative = true;
    AppendF(&out, "  %-18s %-6s %5lld hits %12.2f net%s\n",
            it->strict.substr(0, 16).c_str(), it->vc.c_str(),
            static_cast<long long>(it->hits), it->net,
            it->live ? "  (still live)" : "");
  }
  if (!any_negative) out += "  (none)\n";
  out += "\n";

  out += "Per-VC savings\n";
  AppendF(&out, "  %-10s %8s %8s %6s %12s %10s %10s %12s\n", "vc",
          "streams", "sealed", "hits", "savings", "build", "rent", "net");
  const obs::JsonValue* per_vc = root.Find("per_vc");
  if (per_vc != nullptr && per_vc->is_object()) {
    for (const auto& [name, vc] : per_vc->members) {
      AppendF(&out, "  %-10s %8lld %8lld %6lld %12.2f %10.2f %10.2f %12.2f\n",
              name.empty() ? "(none)" : name.c_str(),
              static_cast<long long>(vc.GetInt("streams")),
              static_cast<long long>(vc.GetInt("sealed_views")),
              static_cast<long long>(vc.GetInt("hits")),
              vc.GetNumber("attributed_savings"), vc.GetNumber("build_cost"),
              vc.GetNumber("storage_rent"), vc.GetNumber("net_savings"));
    }
  }
  return out;
}

Result<std::string> RenderExplainReport(std::string_view decisions_json,
                                        const InsightsReportOptions& options) {
  auto parsed = obs::ParseJson(decisions_json);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = *parsed;
  const obs::JsonValue* jobs = root.Find("jobs");
  const obs::JsonValue* totals = root.Find("totals");
  if (jobs == nullptr || !jobs->is_array() || totals == nullptr) {
    return Status::InvalidArgument(
        "not a decisions document: missing jobs/totals");
  }

  std::string out;
  out += "Reuse decision explain\n";
  out += "======================\n";
  AppendF(&out,
          "%lld jobs traced, %lld events: %lld hits (%.2f saved), "
          "%lld misses (%.2f foregone)\n\n",
          static_cast<long long>(totals->GetInt("jobs")),
          static_cast<long long>(totals->GetInt("events")),
          static_cast<long long>(totals->GetInt("hits")),
          totals->GetNumber("realized_saving"),
          static_cast<long long>(totals->GetInt("misses")),
          totals->GetNumber("foregone_saving"));

  // One tree per job: events in emission (compile) order, grouped under
  // their stage. Signatures are truncated to 16 hex chars like every other
  // report table; the JSON keeps the full width.
  const char* sharing_stage = obs::DecisionStageName(obs::DecisionStage::kSharing);
  for (const obs::JsonValue& job : jobs->items) {
    const obs::JsonValue* events = job.Find("events");
    size_t num_events =
        events != nullptr && events->is_array() ? events->items.size() : 0;
    AppendF(&out, "job %lld (%zu events)\n",
            static_cast<long long>(job.GetInt("job_id")), num_events);
    std::string current_stage;
    if (events != nullptr && events->is_array()) {
      for (const obs::JsonValue& event : events->items) {
        std::string stage = event.GetString("stage");
        if (stage != current_stage) {
          AppendF(&out, "  [%s]\n", stage.c_str());
          current_stage = stage;
        }
        AppendF(&out, "    %-26s node %-16s cand %-16s class %-16s\n",
                event.GetString("reason").c_str(),
                event.GetString("node").substr(0, 16).c_str(),
                event.GetString("candidate").substr(0, 16).c_str(),
                event.GetString("match_class").substr(0, 16).c_str());
        if (stage == sharing_stage) {
          AppendF(&out, "      fanout %lld  subtree %lld  net_utility %.2f\n",
                  static_cast<long long>(event.GetInt("fanout")),
                  static_cast<long long>(event.GetInt("subtree_size")),
                  event.GetNumber("net_utility"));
        } else {
          AppendF(&out, "      recompute %.2f  view_scan %.2f  saving %.2f\n",
                  event.GetNumber("recompute_cost"),
                  event.GetNumber("view_scan_cost"),
                  event.GetNumber("saving"));
        }
        std::string detail = event.GetString("detail");
        if (!detail.empty()) {
          AppendF(&out, "      detail: %s\n", detail.c_str());
        }
      }
    }
    out += "\n";
  }
  if (jobs->items.empty()) out += "(no traced jobs)\n\n";

  out += "Fleet-wide miss attribution (foregone savings by reason x class)\n";
  AppendF(&out, "  %-28s %-18s %8s %14s\n", "reason", "match_class", "events",
          "foregone");
  const obs::JsonValue* buckets = root.Find("miss_attribution");
  bool any_bucket = false;
  if (buckets != nullptr && buckets->is_array()) {
    for (size_t i = 0;
         i < buckets->items.size() && i < static_cast<size_t>(options.top_n);
         ++i) {
      const obs::JsonValue& bucket = buckets->items[i];
      any_bucket = true;
      AppendF(&out, "  %-28s %-18s %8lld %14.2f\n",
              bucket.GetString("reason").c_str(),
              bucket.GetString("match_class").substr(0, 16).c_str(),
              static_cast<long long>(bucket.GetInt("events")),
              bucket.GetNumber("foregone_saving"));
    }
  }
  if (!any_bucket) out += "  (no miss buckets)\n";
  return out;
}

}  // namespace cloudviews
