#ifndef CLOUDVIEWS_CORE_WORKLOAD_REPOSITORY_H_
#define CLOUDVIEWS_CORE_WORKLOAD_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_stats.h"
#include "common/hash.h"
#include "plan/signature.h"
#include "plan/view_index.h"
#include "verify/signature_auditor.h"

namespace cloudviews {

// One observed subexpression instance: a row of the denormalized
// "query subexpressions table with runtime features" from Figure 5. The
// repository pre-joins logical subexpressions with the runtime metrics of
// the jobs that executed them.
struct SubexpressionInstance {
  Hash128 strict_signature;
  Hash128 recurring_signature;
  int64_t job_id = 0;
  std::string virtual_cluster;
  int day = 0;               // simulation day the job ran
  double submit_time = 0.0;  // sim time the enclosing job was submitted
  size_t subtree_size = 1;   // operators in the subexpression
  bool eligible = true;      // reuse-eligible per signature guards
  // Observed runtime features of this subexpression's root operator. Set
  // only when the subexpression actually executed in this job (a matched
  // view replaces execution: the instance is still counted, but carries no
  // fresh metrics).
  bool has_metrics = true;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double cpu_cost = 0.0;     // cost of computing the whole subtree
  std::vector<std::string> input_datasets;
};

// Observed runtime metrics of one executed subexpression, keyed by strict
// signature (how the denormalized table pre-joins plans with runtime data).
struct ObservedMetrics {
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double subtree_cpu = 0.0;
};
using MetricsBySignature =
    std::unordered_map<Hash128, ObservedMetrics, Hash128Hasher>;

// Aggregated history for one strict signature.
struct SubexpressionGroup {
  Hash128 strict_signature;
  Hash128 recurring_signature;
  int64_t occurrences = 0;
  size_t subtree_size = 1;
  bool eligible = true;
  double total_cpu_cost = 0.0;
  int64_t cost_samples = 0;  // instances that carried fresh metrics
  uint64_t last_rows = 0;
  uint64_t last_bytes = 0;
  int first_day = 0;
  int last_day = 0;
  std::vector<std::string> input_datasets;
  // Distinct virtual clusters that executed it (per-VC selection needs this).
  std::vector<std::string> virtual_clusters;
  // Recent instances (job id + submit time), used by schedule-aware
  // selection to detect concurrent submissions.
  std::vector<std::pair<int64_t, double>> recent_instances;

  double AvgCpuCost() const {
    return cost_samples > 0 ? total_cpu_cost / static_cast<double>(cost_samples)
                            : 0.0;
  }
};

// Per-day overlap statistics (drives Figure 3).
struct DayOverlapStats {
  int day = 0;
  int64_t total_subexpressions = 0;
  int64_t repeated_subexpressions = 0;  // seen before (any earlier instance)
  double PercentRepeated() const {
    return total_subexpressions > 0
               ? 100.0 * static_cast<double>(repeated_subexpressions) /
                     static_cast<double>(total_subexpressions)
               : 0.0;
  }
};

// The workload repository: ingests every executed job's subexpressions and
// answers the analysis queries CloudViews needs (overlap rates, repeat
// frequencies, candidate groups).
class WorkloadRepository {
 public:
  WorkloadRepository() = default;

  WorkloadRepository(const WorkloadRepository&) = delete;
  WorkloadRepository& operator=(const WorkloadRepository&) = delete;

  // Joins executed-plan signatures with runtime statistics, producing the
  // metrics table to pass to IngestJob.
  static MetricsBySignature CollectMetrics(
      const std::vector<NodeSignature>& executed_sigs,
      const ExecutionStats& stats);

  // Ingests the subexpressions of one job. `sigs` comes from
  // SignatureComputer::ComputeAll over the job's *pre-reuse* (as-compiled)
  // logical plan — subexpressions answered from views still count as
  // occurrences. `metrics` carries observed runtime features for the
  // subexpressions that executed (from CollectMetrics).
  void IngestJob(int64_t job_id, const std::string& virtual_cluster, int day,
                 double submit_time, const std::vector<NodeSignature>& sigs,
                 const MetricsBySignature& metrics);

  // Ingests a single pre-assembled instance (used by tests and generators).
  void Ingest(const SubexpressionInstance& instance);

  int64_t total_instances() const { return total_instances_; }
  size_t num_groups() const { return groups_.size(); }

  const SubexpressionGroup* FindGroup(const Hash128& strict) const;

  // All groups with at least `min_occurrences` instances — the raw common
  // subexpressions.
  std::vector<const SubexpressionGroup*> CommonSubexpressions(
      int64_t min_occurrences = 2) const;

  std::vector<const SubexpressionGroup*> AllGroups() const;

  // Every group flattened to the signature auditor's audit view. The
  // auditor sits below core in the module DAG, so the repository feeds it
  // plain values rather than itself.
  std::vector<verify::RepositoryGroup> AuditGroups() const;

  // Per-day overlap series (Figure 3 left); days with no activity are
  // omitted.
  std::vector<DayOverlapStats> OverlapByDay() const;

  // Average repeat frequency = instances / distinct signatures (Figure 3
  // right), over the whole retained window.
  double AverageRepeatFrequency() const;

  // Fraction of all instances whose signature occurs more than once.
  double PercentRepeated() const;

  // Frees per-instance detail older than `keep_after_day` while keeping
  // aggregates (production repositories are windowed).
  void TrimInstancesBefore(int keep_after_day);

  // --- Snapshot restore (see core/repository_io.h) -------------------------

  // Installs a fully-aggregated group; fails if its signature exists.
  Status RestoreGroup(SubexpressionGroup group);
  // Installs one day's overlap counters; fails if the day exists.
  Status RestoreDayStats(const DayOverlapStats& stats);

  // Candidate index for generalized matching: spooled view definitions keyed
  // by match class + stage-1 features. Lives with the repository because it
  // is workload metadata about materialized subexpressions; serialized by
  // the same caller discipline as the rest of this class.
  GeneralizedViewIndex& generalized_index() { return generalized_index_; }
  const GeneralizedViewIndex& generalized_index() const {
    return generalized_index_;
  }

 private:
  std::unordered_map<Hash128, SubexpressionGroup, Hash128Hasher> groups_;
  std::map<int, DayOverlapStats> by_day_;
  int64_t total_instances_ = 0;
  GeneralizedViewIndex generalized_index_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_WORKLOAD_REPOSITORY_H_
