#include "core/view_selection.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/exec_stats.h"

namespace cloudviews {

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kGreedyRatio:
      return "greedy-ratio";
    case SelectionStrategy::kTopKFrequency:
      return "topk-frequency";
    case SelectionStrategy::kBigSubs:
      return "bigsubs";
    case SelectionStrategy::kNoBudget:
      return "no-budget";
  }
  return "?";
}

double ViewSelector::ReusableFraction(const SubexpressionGroup& group) const {
  if (group.recent_instances.size() < 2) return 1.0;
  // "We only consider subexpressions that could finish materializing before
  // the start of other consuming jobs": an instance can reuse only if it is
  // submitted at least one concurrency window after the first instance of
  // its day (the producer), when the view has been sealed.
  std::map<int64_t, std::vector<double>> by_day;
  for (const auto& [job_id, t] : group.recent_instances) {
    by_day[static_cast<int64_t>(t / 86400.0)].push_back(t);
  }
  int64_t reusable = 0;
  int64_t total = 0;
  for (auto& [day, times] : by_day) {
    double first = *std::min_element(times.begin(), times.end());
    for (double t : times) {
      total += 1;
      if (t - first >= constraints_.concurrency_window_seconds) reusable += 1;
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(reusable) / static_cast<double>(total);
}

std::vector<ViewCandidate> ViewSelector::ScoreCandidates(
    const WorkloadRepository& repository) const {
  std::vector<ViewCandidate> out;
  for (const SubexpressionGroup* group :
       repository.CommonSubexpressions(constraints_.min_occurrences)) {
    if (!group->eligible) continue;
    ViewCandidate cand;
    cand.strict_signature = group->strict_signature;
    cand.recurring_signature = group->recurring_signature;
    cand.occurrences = group->occurrences;
    cand.avg_cpu_cost = group->AvgCpuCost();
    cand.storage_bytes = group->last_bytes;
    cand.subtree_size = group->subtree_size;
    cand.virtual_clusters = group->virtual_clusters;
    cand.read_cost =
        static_cast<double>(group->last_rows) * CostWeights::kScanRow +
        static_cast<double>(group->last_bytes) * CostWeights::kViewScanByte;
    // Every future hit after the materializing one saves (recompute - read);
    // expected future hits are estimated by the observed repeat frequency.
    double per_reuse = cand.avg_cpu_cost - cand.read_cost;
    double expected_reuses = static_cast<double>(group->occurrences - 1);
    double materialize_overhead =
        static_cast<double>(group->last_bytes) * CostWeights::kSpoolByte +
        static_cast<double>(group->last_rows) * CostWeights::kSpoolRow;
    cand.utility = expected_reuses * per_reuse - materialize_overhead;
    out.push_back(std::move(cand));
  }
  return out;
}

namespace {

// BigSubs-style selection (Jindal et al., "Thou Shall Not Recompute"):
// subexpression selection is a bipartite job/subexpression problem — a job's
// computation can only be saved once, so overlapping candidates covering the
// same jobs must not double count their savings. The exact ILP is solved in
// production with distributed label propagation; here we run the standard
// lazy-greedy approximation over marginal utilities, which propagates
// per-job "already saved" labels between rounds.
std::vector<ViewCandidate> SelectBigSubs(
    std::vector<ViewCandidate> candidates,
    const WorkloadRepository& repository, uint64_t budget, int max_views,
    SelectionResult* result) {
  struct Entry {
    ViewCandidate cand;
    std::vector<int64_t> jobs;      // jobs containing this subexpression
    double per_job_saving = 0.0;    // savings if this view serves that job
    bool taken = false;
  };
  std::vector<Entry> entries;
  entries.reserve(candidates.size());
  for (ViewCandidate& cand : candidates) {
    if (cand.utility <= 0) {
      result->rejected_utility += 1;
      continue;
    }
    Entry entry;
    const SubexpressionGroup* group =
        repository.FindGroup(cand.strict_signature);
    if (group != nullptr) {
      for (const auto& [job_id, t] : group->recent_instances) {
        entry.jobs.push_back(job_id);
      }
    }
    entry.per_job_saving =
        std::max(0.0, cand.avg_cpu_cost - cand.read_cost);
    entry.cand = std::move(cand);
    entries.push_back(std::move(entry));
  }

  // label[job] = cpu savings already granted to that job by selected views.
  std::unordered_map<int64_t, double> job_saved;
  auto marginal_utility = [&](const Entry& entry) {
    double total = 0.0;
    for (int64_t job : entry.jobs) {
      auto it = job_saved.find(job);
      double already = it == job_saved.end() ? 0.0 : it->second;
      // A bigger saving supersedes the smaller one within the same job.
      total += std::max(0.0, entry.per_job_saving - already);
    }
    double materialize_overhead =
        static_cast<double>(entry.cand.storage_bytes) *
        CostWeights::kSpoolByte;
    // The producing instance saves nothing.
    total -= entry.per_job_saving + materialize_overhead;
    return total;
  };

  std::vector<ViewCandidate> selected;
  uint64_t used = 0;
  while (static_cast<int>(selected.size()) < max_views) {
    double best_ratio = 0.0;
    int best = -1;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].taken) continue;
      if (used + entries[i].cand.storage_bytes > budget) continue;
      double mu = marginal_utility(entries[i]);
      double ratio =
          mu / static_cast<double>(entries[i].cand.storage_bytes + 1);
      if (mu > 0 && (best < 0 || ratio > best_ratio)) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    Entry& entry = entries[static_cast<size_t>(best)];
    entry.taken = true;
    used += entry.cand.storage_bytes;
    // Propagate labels: these jobs are now (partially) served.
    for (int64_t job : entry.jobs) {
      double& saved = job_saved[job];
      saved = std::max(saved, entry.per_job_saving);
    }
    entry.cand.utility = marginal_utility(entry);  // report marginal value
    selected.push_back(entry.cand);
  }
  for (const Entry& entry : entries) {
    if (!entry.taken) result->rejected_budget += 1;
  }
  return selected;
}

}  // namespace

std::vector<ViewCandidate> ViewSelector::ApplyBudget(
    std::vector<ViewCandidate> candidates,
    const WorkloadRepository& repository, uint64_t budget, int max_views,
    SelectionResult* result) const {
  if (constraints_.strategy == SelectionStrategy::kBigSubs) {
    return SelectBigSubs(std::move(candidates), repository, budget, max_views,
                         result);
  }

  switch (constraints_.strategy) {
    case SelectionStrategy::kGreedyRatio:
    case SelectionStrategy::kNoBudget:
      std::sort(candidates.begin(), candidates.end(),
                [](const ViewCandidate& a, const ViewCandidate& b) {
                  double ra =
                      a.utility / static_cast<double>(a.storage_bytes + 1);
                  double rb =
                      b.utility / static_cast<double>(b.storage_bytes + 1);
                  if (ra != rb) return ra > rb;
                  return a.strict_signature < b.strict_signature;
                });
      break;
    case SelectionStrategy::kTopKFrequency:
      std::sort(candidates.begin(), candidates.end(),
                [](const ViewCandidate& a, const ViewCandidate& b) {
                  if (a.occurrences != b.occurrences) {
                    return a.occurrences > b.occurrences;
                  }
                  return a.strict_signature < b.strict_signature;
                });
      break;
    default:
      break;
  }

  std::vector<ViewCandidate> selected;
  uint64_t used = 0;
  for (ViewCandidate& cand : candidates) {
    if (cand.utility <= 0) {
      result->rejected_utility += 1;
      continue;
    }
    if (static_cast<int>(selected.size()) >= max_views) {
      result->rejected_budget += 1;
      continue;
    }
    if (constraints_.strategy != SelectionStrategy::kNoBudget &&
        used + cand.storage_bytes > budget) {
      result->rejected_budget += 1;
      continue;
    }
    used += cand.storage_bytes;
    selected.push_back(std::move(cand));
  }
  return selected;
}

SelectionResult ViewSelector::Select(
    const WorkloadRepository& repository) const {
  SelectionResult result;
  std::vector<ViewCandidate> candidates = ScoreCandidates(repository);
  result.candidates_considered = static_cast<int64_t>(candidates.size());

  // Schedule-aware filtering: drop mostly-concurrent candidates, and scale
  // the remaining utilities by the fraction of consumers that can actually
  // wait for materialization.
  if (constraints_.schedule_aware) {
    std::vector<ViewCandidate> kept;
    kept.reserve(candidates.size());
    for (ViewCandidate& cand : candidates) {
      const SubexpressionGroup* group =
          repository.FindGroup(cand.strict_signature);
      double fraction = group != nullptr ? ReusableFraction(*group) : 1.0;
      if (fraction < constraints_.min_reusable_fraction) {
        result.rejected_schedule += 1;
        continue;
      }
      cand.utility *= fraction;
      kept.push_back(std::move(cand));
    }
    candidates = std::move(kept);
  }

  if (constraints_.per_virtual_cluster) {
    // A single selection pass that partitions the workload by VC and applies
    // the (per-VC) budget within each partition. Cross-VC subexpressions are
    // considered in each VC they appear in but selected at most once.
    std::unordered_map<std::string, std::vector<ViewCandidate>> by_vc;
    for (const ViewCandidate& cand : candidates) {
      for (const std::string& vc : cand.virtual_clusters) {
        by_vc[vc].push_back(cand);
      }
    }
    std::vector<std::string> vcs;
    for (const auto& [vc, list] : by_vc) vcs.push_back(vc);
    std::sort(vcs.begin(), vcs.end());
    for (const std::string& vc : vcs) {
      std::vector<ViewCandidate> chosen = ApplyBudget(
          std::move(by_vc[vc]), repository,
          constraints_.storage_budget_bytes, constraints_.max_views, &result);
      for (ViewCandidate& cand : chosen) {
        if (result.selected_strict.insert(cand.strict_signature).second) {
          result.expected_savings += std::max(0.0, cand.utility);
          result.total_storage_bytes += cand.storage_bytes;
          result.selected.push_back(std::move(cand));
        }
      }
    }
  } else {
    std::vector<ViewCandidate> chosen = ApplyBudget(
        std::move(candidates), repository, constraints_.storage_budget_bytes,
        constraints_.max_views, &result);
    for (ViewCandidate& cand : chosen) {
      result.selected_strict.insert(cand.strict_signature);
      result.expected_savings += std::max(0.0, cand.utility);
      result.total_storage_bytes += cand.storage_bytes;
      result.selected.push_back(std::move(cand));
    }
  }
  return result;
}

}  // namespace cloudviews
