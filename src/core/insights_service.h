#ifndef CLOUDVIEWS_CORE_INSIGHTS_SERVICE_H_
#define CLOUDVIEWS_CORE_INSIGHTS_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/view_selection.h"
#include "obs/profile.h"

namespace cloudviews {

// One annotation entry served to the compiler: a subexpression (identified
// by its recurring signature — strict signatures change whenever inputs are
// bulk-updated, recurring signatures survive) that the selector chose for
// materialization.
struct AnnotationEntry {
  Hash128 recurring_signature;
  std::string tag;           // index key ("generate tags for signatures")
  double expected_utility = 0.0;
  int64_t observed_occurrences = 0;
};

// Enable/disable controls at every level the paper describes (section 4,
// "Multi-level control"): insights-service uber switch, per-cluster,
// per-virtual-cluster, and per-job toggles.
struct ReuseControls {
  bool service_enabled = true;                       // uber kill switch
  std::unordered_set<std::string> disabled_clusters;
  // Opt-in/opt-out deployment model: in opt-in mode only VCs in
  // `enabled_vcs` participate; in opt-out mode all except `disabled_vcs`.
  bool opt_out_model = false;
  std::unordered_set<std::string> enabled_vcs;
  std::unordered_set<std::string> disabled_vcs;

  bool IsEnabled(const std::string& cluster, const std::string& vc,
                 bool job_level_enabled) const;
};

// The insights service: stores the view-selection output as tagged
// annotations, serves them to compiling jobs (with a simulated round-trip
// latency), and arbitrates exclusive view-creation locks.
class InsightsService {
 public:
  // Round-trip to the cached serving layer: "an end to end round trip
  // latency of around 15 milliseconds".
  static constexpr double kFetchLatencySeconds = 0.015;

  InsightsService() = default;

  InsightsService(const InsightsService&) = delete;
  InsightsService& operator=(const InsightsService&) = delete;

  // --- Annotations ----------------------------------------------------------

  // Installs a fresh selection result (the periodic workload-analysis job
  // publishing into Azure SQL in production). Replaces prior annotations.
  void PublishSelection(const SelectionResult& selection);

  // Fetches annotations relevant to a compiling job, given the recurring
  // signatures of its subexpressions (its "tags"). Increments the fetch
  // counter and charges the simulated round trip.
  std::vector<AnnotationEntry> FetchAnnotations(
      const std::vector<Hash128>& recurring_signatures) const;

  // All candidate recurring signatures (bulk download for debugging /
  // annotation files).
  std::unordered_set<Hash128, Hash128Hasher> AllCandidates() const;

  // Serializes annotations to a human-readable query-annotations file
  // ("could be used for quickly debugging any job").
  std::string ExportAnnotationsFile() const;

  // Replaces the served annotations with the contents of an annotations
  // file (the incident-debugging path: "we can reproduce the compute reuse
  // behavior by compiling a job with the annotations file").
  Status ImportAnnotationsFile(const std::string& contents);

  size_t num_annotations() const { return annotations_.size(); }
  int64_t fetch_count() const {
    return fetch_count_.load(std::memory_order_relaxed);
  }
  double total_fetch_latency() const {
    return static_cast<double>(fetch_count()) * kFetchLatencySeconds;
  }

  // --- View-creation locks --------------------------------------------------

  // Attempts to acquire the exclusive creation lock for a strict signature.
  bool TryAcquireViewLock(const Hash128& strict_signature, int64_t job_id);

  // Releases the lock (on seal, job failure, or abandonment).
  Status ReleaseViewLock(const Hash128& strict_signature, int64_t job_id);

  bool IsLocked(const Hash128& strict_signature) const {
    return view_locks_.count(strict_signature) > 0;
  }
  size_t num_locks_held() const { return view_locks_.size(); }

  // --- Controls ---------------------------------------------------------------

  ReuseControls& controls() { return controls_; }
  const ReuseControls& controls() const { return controls_; }

  // --- Per-query profiles ----------------------------------------------------

  // Retains the most recent `kMaxProfiles` query profiles reported by the
  // engine (the per-job telemetry the production service keeps for
  // debugging). Oldest profiles are evicted first.
  static constexpr size_t kMaxProfiles = 64;
  void RecordProfile(const obs::QueryProfile& profile);
  const std::deque<obs::QueryProfile>& recent_profiles() const {
    return profiles_;
  }

 private:
  std::unordered_map<Hash128, AnnotationEntry, Hash128Hasher> annotations_;
  std::unordered_map<Hash128, int64_t, Hash128Hasher> view_locks_;
  ReuseControls controls_;
  std::deque<obs::QueryProfile> profiles_;
  // atomic[relaxed]: concurrent compilations fetch annotations through a
  // const service reference, so the tally increments race without a lock;
  // it carries no ordered payload.
  mutable std::atomic<int64_t> fetch_count_{0};
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_INSIGHTS_SERVICE_H_
