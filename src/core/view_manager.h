#ifndef CLOUDVIEWS_CORE_VIEW_MANAGER_H_
#define CLOUDVIEWS_CORE_VIEW_MANAGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/insights_service.h"
#include "obs/provenance.h"
#include "storage/view_store.h"

namespace cloudviews {

// Lifecycle management for materialized CloudViews: creation bookkeeping,
// early sealing, TTL expiry, and invalidation on input or runtime changes.
class ViewManager {
 public:
  // `ledger` (not owned, may be null) receives spool-started / sealed /
  // aborted lifecycle events with materialization costs attached.
  ViewManager(ViewStore* store, InsightsService* insights,
              obs::ProvenanceLedger* ledger = nullptr)
      : store_(store), insights_(insights), provenance_(ledger) {}

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  // Registers the start of a materialization (spool added at compile time
  // under a creation lock held by `job_id`).
  Status BeginMaterialize(const Hash128& strict, const Hash128& recurring,
                          const std::string& virtual_cluster,
                          const std::vector<std::string>& input_datasets,
                          int64_t job_id, double now);

  // Early sealing: the spool finished writing, so the view becomes readable
  // and the creation lock is released — even though the producing job is
  // still running ("the job manager makes the view available even before
  // the query finishes"). An injected `exec.spool.seal` fault turns the
  // seal into an abort (entry withdrawn, lock released) and returns the
  // fault status; the producing query is unaffected.
  Status SealEarly(const Hash128& strict, TablePtr contents,
                   uint64_t observed_rows, uint64_t observed_bytes,
                   int64_t job_id, double now);

  // A materialization failed mid-flight (spool write fault or seal fault):
  // withdraw the materializing entry, release the creation lock, and log.
  // Idempotent — a second abort for the same signature is a no-op. `now`
  // tags the provenance event (-1 when no simulated timestamp is at hand).
  void AbortMaterialize(const Hash128& strict, int64_t job_id,
                        const Status& cause, double now = -1.0);

  // A job holding creation locks failed: release locks and drop any
  // half-written views so other jobs can retry.
  void AbandonJob(int64_t job_id, const std::vector<Hash128>& locked);

  // Purges views past their TTL; returns number purged.
  size_t PurgeExpired(double now);

  // Drops every view reading `dataset` (GDPR forget / bulk update hygiene —
  // future jobs would not match them anyway, but storage must be reclaimed).
  size_t InvalidateByDataset(const std::string& dataset);

  // Runtime/signature-version change: every existing view is stale.
  void InvalidateAll();

  const ViewStore& store() const { return *store_; }

 private:
  ViewStore* store_;
  InsightsService* insights_;
  obs::ProvenanceLedger* provenance_;
  // strict signature -> datasets it reads (for targeted invalidation).
  std::unordered_map<Hash128, std::vector<std::string>, Hash128Hasher>
      view_inputs_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_VIEW_MANAGER_H_
