#include "core/workload_repository.h"

#include <algorithm>

#include "plan/logical_plan.h"

namespace cloudviews {

MetricsBySignature WorkloadRepository::CollectMetrics(
    const std::vector<NodeSignature>& executed_sigs,
    const ExecutionStats& stats) {
  MetricsBySignature out;
  for (const NodeSignature& sig : executed_sigs) {
    if (sig.node == nullptr) continue;
    ObservedMetrics metrics;
    auto it = stats.per_node.find(sig.node);
    if (it != stats.per_node.end()) {
      metrics.rows = it->second.rows_out;
      metrics.bytes = it->second.bytes_out;
    }
    // Subtree cost: this node plus all descendants' observed costs.
    std::vector<const LogicalOp*> stack = {sig.node};
    while (!stack.empty()) {
      const LogicalOp* op = stack.back();
      stack.pop_back();
      auto node_it = stats.per_node.find(op);
      if (node_it != stats.per_node.end()) {
        metrics.subtree_cpu += node_it->second.cpu_cost;
      }
      for (const LogicalOpPtr& child : op->children) {
        stack.push_back(child.get());
      }
    }
    out[sig.strict] = metrics;
  }
  return out;
}

void WorkloadRepository::IngestJob(int64_t job_id,
                                   const std::string& virtual_cluster, int day,
                                   double submit_time,
                                   const std::vector<NodeSignature>& sigs,
                                   const MetricsBySignature& metrics) {
  for (const NodeSignature& sig : sigs) {
    // Single leaf operators are not interesting reuse units; the paper's
    // subexpressions are proper sub-plans. Keep size >= 2 (scan+op).
    if (sig.subtree_size < 2) continue;
    SubexpressionInstance instance;
    instance.strict_signature = sig.strict;
    instance.recurring_signature = sig.recurring;
    instance.job_id = job_id;
    instance.virtual_cluster = virtual_cluster;
    instance.day = day;
    instance.submit_time = submit_time;
    instance.subtree_size = sig.subtree_size;
    instance.eligible = sig.eligible;
    if (sig.node != nullptr) {
      instance.input_datasets = sig.node->InputDatasets();
    }
    auto it = metrics.find(sig.strict);
    if (it != metrics.end()) {
      instance.rows = it->second.rows;
      instance.bytes = it->second.bytes;
      instance.cpu_cost = it->second.subtree_cpu;
      instance.has_metrics = true;
    } else {
      // Answered from a view (or otherwise skipped): counted, no metrics.
      instance.has_metrics = false;
    }
    Ingest(instance);
  }
}

void WorkloadRepository::Ingest(const SubexpressionInstance& instance) {
  total_instances_ += 1;

  DayOverlapStats& day_stats = by_day_[instance.day];
  day_stats.day = instance.day;
  day_stats.total_subexpressions += 1;

  auto it = groups_.find(instance.strict_signature);
  if (it == groups_.end()) {
    SubexpressionGroup group;
    group.strict_signature = instance.strict_signature;
    group.recurring_signature = instance.recurring_signature;
    group.subtree_size = instance.subtree_size;
    group.eligible = instance.eligible;
    group.first_day = instance.day;
    group.input_datasets = instance.input_datasets;
    it = groups_.emplace(instance.strict_signature, std::move(group)).first;
  } else {
    day_stats.repeated_subexpressions += 1;
  }
  SubexpressionGroup& group = it->second;
  group.occurrences += 1;
  if (instance.has_metrics) {
    group.total_cpu_cost += instance.cpu_cost;
    group.cost_samples += 1;
    group.last_rows = instance.rows;
    group.last_bytes = instance.bytes;
  }
  group.last_day = instance.day;
  group.eligible = group.eligible && instance.eligible;
  if (std::find(group.virtual_clusters.begin(), group.virtual_clusters.end(),
                instance.virtual_cluster) == group.virtual_clusters.end()) {
    group.virtual_clusters.push_back(instance.virtual_cluster);
  }
  group.recent_instances.emplace_back(instance.job_id, instance.submit_time);
  // Bound the per-group instance history.
  constexpr size_t kMaxRecent = 64;
  if (group.recent_instances.size() > kMaxRecent) {
    group.recent_instances.erase(group.recent_instances.begin());
  }
}

const SubexpressionGroup* WorkloadRepository::FindGroup(
    const Hash128& strict) const {
  auto it = groups_.find(strict);
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<const SubexpressionGroup*> WorkloadRepository::CommonSubexpressions(
    int64_t min_occurrences) const {
  std::vector<const SubexpressionGroup*> out;
  for (const auto& [sig, group] : groups_) {
    if (group.occurrences >= min_occurrences) out.push_back(&group);
  }
  std::sort(out.begin(), out.end(),
            [](const SubexpressionGroup* a, const SubexpressionGroup* b) {
              return a->occurrences != b->occurrences
                         ? a->occurrences > b->occurrences
                         : a->strict_signature < b->strict_signature;
            });
  return out;
}

std::vector<const SubexpressionGroup*> WorkloadRepository::AllGroups() const {
  std::vector<const SubexpressionGroup*> out;
  out.reserve(groups_.size());
  for (const auto& [sig, group] : groups_) out.push_back(&group);
  return out;
}

std::vector<verify::RepositoryGroup> WorkloadRepository::AuditGroups() const {
  std::vector<verify::RepositoryGroup> out;
  out.reserve(groups_.size());
  for (const auto& [sig, group] : groups_) {
    out.push_back({group.strict_signature, group.recurring_signature,
                   group.subtree_size, group.occurrences, group.cost_samples,
                   group.first_day, group.last_day});
  }
  return out;
}

std::vector<DayOverlapStats> WorkloadRepository::OverlapByDay() const {
  std::vector<DayOverlapStats> out;
  out.reserve(by_day_.size());
  for (const auto& [day, stats] : by_day_) out.push_back(stats);
  return out;
}

double WorkloadRepository::AverageRepeatFrequency() const {
  if (groups_.empty()) return 0.0;
  return static_cast<double>(total_instances_) /
         static_cast<double>(groups_.size());
}

double WorkloadRepository::PercentRepeated() const {
  if (total_instances_ == 0) return 0.0;
  int64_t in_repeated_groups = 0;
  for (const auto& [sig, group] : groups_) {
    if (group.occurrences > 1) in_repeated_groups += group.occurrences;
  }
  return 100.0 * static_cast<double>(in_repeated_groups) /
         static_cast<double>(total_instances_);
}

Status WorkloadRepository::RestoreGroup(SubexpressionGroup group) {
  if (groups_.count(group.strict_signature) > 0) {
    return Status::AlreadyExists("group already present: " +
                                 group.strict_signature.ToHex());
  }
  total_instances_ += group.occurrences;
  Hash128 key = group.strict_signature;
  groups_.emplace(key, std::move(group));
  return Status::OK();
}

Status WorkloadRepository::RestoreDayStats(const DayOverlapStats& stats) {
  if (by_day_.count(stats.day) > 0) {
    return Status::AlreadyExists("day already present: " +
                                 std::to_string(stats.day));
  }
  by_day_[stats.day] = stats;
  return Status::OK();
}

void WorkloadRepository::TrimInstancesBefore(int keep_after_day) {
  for (auto& [sig, group] : groups_) {
    if (group.last_day < keep_after_day) {
      group.recent_instances.clear();
      group.recent_instances.shrink_to_fit();
    }
  }
}

}  // namespace cloudviews
