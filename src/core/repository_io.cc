#include "core/repository_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.h"
#include "fault/fault_sites.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {

namespace {

constexpr char kHeader[] = "cloudviews-repository v1";

// The persistent store behind the repository is remote in production;
// transient request failures are expected and retried a bounded number of
// times. Parse/corruption errors are never retried.
constexpr int kMaxIoAttempts = 3;

void CountIoRetry() {
  static obs::Counter& retries =
      obs::MetricsRegistry::Global().counter(obs::metric_names::kFaultsRetries);
  retries.Increment();
}

std::string JoinList(const std::vector<std::string>& items) {
  if (items.empty()) return "-";
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

std::vector<std::string> SplitList(const std::string& packed) {
  std::vector<std::string> out;
  if (packed == "-") return out;
  size_t start = 0;
  while (start <= packed.size()) {
    size_t comma = packed.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(packed.substr(start));
      break;
    }
    out.push_back(packed.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

std::string SerializeRepository(const WorkloadRepository& repository) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const DayOverlapStats& day : repository.OverlapByDay()) {
    out << "day\t" << day.day << "\t" << day.total_subexpressions << "\t"
        << day.repeated_subexpressions << "\n";
  }
  for (const SubexpressionGroup* group : repository.AllGroups()) {
    out << "group\t" << group->strict_signature.ToHex() << "\t"
        << group->recurring_signature.ToHex() << "\t" << group->occurrences
        << "\t" << group->subtree_size << "\t" << (group->eligible ? 1 : 0)
        << "\t" << group->cost_samples << "\t" << group->total_cpu_cost
        << "\t" << group->last_rows << "\t" << group->last_bytes << "\t"
        << group->first_day << "\t" << group->last_day << "\t"
        << JoinList(group->virtual_clusters) << "\t"
        << JoinList(group->input_datasets) << "\n";
  }
  return out.str();
}

Status DeserializeRepository(const std::string& snapshot,
                             WorkloadRepository* repository) {
  if (repository == nullptr) {
    return Status::InvalidArgument("null repository");
  }
  if (repository->total_instances() != 0 || repository->num_groups() != 0) {
    return Status::InvalidArgument("target repository is not empty");
  }
  std::istringstream in(snapshot);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::Corruption("missing or unknown repository header");
  }
  int line_number = 1;
  while (std::getline(in, line)) {
    line_number += 1;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "day") {
      DayOverlapStats day;
      fields >> day.day >> day.total_subexpressions >>
          day.repeated_subexpressions;
      if (fields.fail()) {
        return Status::Corruption("malformed day record at line " +
                                  std::to_string(line_number));
      }
      // Day counters are informational; a duplicate means a corrupt file.
      CLOUDVIEWS_RETURN_NOT_OK(repository->RestoreDayStats(day));
    } else if (kind == "group") {
      SubexpressionGroup group;
      std::string strict_hex, recurring_hex, vcs, datasets;
      int eligible = 1;
      fields >> strict_hex >> recurring_hex >> group.occurrences >>
          group.subtree_size >> eligible >> group.cost_samples >>
          group.total_cpu_cost >> group.last_rows >> group.last_bytes >>
          group.first_day >> group.last_day >> vcs >> datasets;
      if (fields.fail() ||
          !Hash128::FromHex(strict_hex, &group.strict_signature) ||
          !Hash128::FromHex(recurring_hex, &group.recurring_signature)) {
        return Status::Corruption("malformed group record at line " +
                                  std::to_string(line_number));
      }
      group.eligible = eligible != 0;
      group.virtual_clusters = SplitList(vcs);
      group.input_datasets = SplitList(datasets);
      CLOUDVIEWS_RETURN_NOT_OK(repository->RestoreGroup(std::move(group)));
    } else {
      return Status::Corruption("unknown record kind '" + kind +
                                "' at line " + std::to_string(line_number));
    }
  }
  return Status::OK();
}

Status SaveRepository(const WorkloadRepository& repository,
                      const std::string& path) {
  Status transient = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    transient = fault::Inject(fault::sites::kRepoWrite);
    if (transient.ok()) break;
    if (attempt + 1 < kMaxIoAttempts) CountIoRetry();
  }
  if (!transient.ok()) return transient;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << SerializeRepository(repository);
  out.close();
  if (out.fail()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Status LoadRepository(const std::string& path,
                      WorkloadRepository* repository) {
  Status transient = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    transient = fault::Inject(fault::sites::kRepoRead);
    if (transient.ok()) break;
    if (attempt + 1 < kMaxIoAttempts) CountIoRetry();
  }
  if (!transient.ok()) return transient;
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeRepository(buffer.str(), repository);
}

}  // namespace cloudviews
