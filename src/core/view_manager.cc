#include "core/view_manager.h"

#include <algorithm>

#include "common/exec_stats.h"
#include "fault/fault.h"
#include "fault/fault_sites.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {

Status ViewManager::BeginMaterialize(
    const Hash128& strict, const Hash128& recurring,
    const std::string& virtual_cluster,
    const std::vector<std::string>& input_datasets, int64_t job_id,
    double now) {
  CLOUDVIEWS_RETURN_NOT_OK(store_->BeginMaterialize(strict, recurring,
                                                    virtual_cluster, job_id,
                                                    now));
  view_inputs_[strict] = input_datasets;
  if (provenance_ != nullptr) {
    provenance_->RecordSpoolStarted(strict, recurring, virtual_cluster, job_id,
                                    now);
  }
  return Status::OK();
}

Status ViewManager::SealEarly(const Hash128& strict, TablePtr contents,
                              uint64_t observed_rows, uint64_t observed_bytes,
                              int64_t job_id, double now) {
  Status fault = fault::Inject(fault::sites::kSpoolSeal);
  if (!fault.ok()) {
    // The job manager failed to publish the fully written view. Withdraw it
    // so other jobs can retry the materialization; the producing query
    // keeps its own copy of the rows and is unaffected.
    static obs::Counter& aborts = obs::MetricsRegistry::Global().counter(
        obs::metric_names::kExecSpoolAborts);
    aborts.Increment();
    AbortMaterialize(strict, job_id, fault, now);
    return fault;
  }
  // Spool latency: time from the materializing entry appearing to the view
  // becoming readable. Captured before Seal overwrites nothing — created_at
  // survives the seal — but the lookup must precede the move of `contents`.
  double spool_latency = 0.0;
  if (const MaterializedView* entry = store_->FindAny(strict);
      entry != nullptr && now > entry->created_at) {
    spool_latency = now - entry->created_at;
  }
  CLOUDVIEWS_RETURN_NOT_OK(
      store_->Seal(strict, std::move(contents), observed_rows, observed_bytes,
                   now));
  if (provenance_ != nullptr) {
    // Materialization cost in the cost model's units: what the executor
    // charges for spooling these rows/bytes to stable storage.
    double build_cost =
        static_cast<double>(observed_rows) * CostWeights::kSpoolRow +
        static_cast<double>(observed_bytes) * CostWeights::kSpoolByte;
    provenance_->RecordSealed(strict, job_id, now, observed_rows,
                              observed_bytes, build_cost, spool_latency);
  }
  // Release the creation lock so the insights service starts advertising the
  // view for reuse wherever possible.
  if (insights_ != nullptr) {
    Status release = insights_->ReleaseViewLock(strict, job_id);
    // A missing lock is tolerable (e.g. lock table was flushed); anything
    // else indicates a protocol bug.
    if (!release.ok() && release.code() != StatusCode::kNotFound) {
      return release;
    }
  }
  return Status::OK();
}

void ViewManager::AbortMaterialize(const Hash128& strict, int64_t job_id,
                                   const Status& cause, double now) {
  if (insights_ != nullptr) {
    insights_->ReleaseViewLock(strict, job_id).ok();
  }
  const MaterializedView* view = store_->FindAny(strict);
  if (view != nullptr && view->state == ViewState::kMaterializing) {
    // Record the detailed cause first; the store's own generic "invalidated"
    // abort for the same entry then dedupes against it.
    if (provenance_ != nullptr) {
      provenance_->RecordAborted(strict, job_id, now, cause.ToString());
    }
    store_->Invalidate(strict, now).ok();
    view_inputs_.erase(strict);
  }
  obs::LogWarn("views", "materialization_aborted",
               {{"signature", strict.ToHex()},
                {"job_id", job_id},
                {"cause", cause.ToString()}});
}

void ViewManager::AbandonJob(int64_t job_id,
                             const std::vector<Hash128>& locked) {
  for (const Hash128& sig : locked) {
    if (insights_ != nullptr) {
      insights_->ReleaseViewLock(sig, job_id).ok();
    }
    const MaterializedView* view = store_->FindAny(sig);
    if (view != nullptr && view->state == ViewState::kMaterializing &&
        view->producer_job_id == job_id) {
      if (provenance_ != nullptr) {
        provenance_->RecordAborted(sig, job_id, /*now=*/-1.0, "job_abandoned");
      }
      store_->Invalidate(sig).ok();
      view_inputs_.erase(sig);
    }
  }
}

size_t ViewManager::PurgeExpired(double now) {
  size_t purged = store_->PurgeExpired(now);
  if (purged > 0) {
    // Drop input registrations for views no longer present.
    for (auto it = view_inputs_.begin(); it != view_inputs_.end();) {
      if (store_->FindAny(it->first) == nullptr) {
        it = view_inputs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return purged;
}

size_t ViewManager::InvalidateByDataset(const std::string& dataset) {
  std::vector<Hash128> to_drop;
  for (const auto& [sig, inputs] : view_inputs_) {
    if (std::find(inputs.begin(), inputs.end(), dataset) != inputs.end()) {
      to_drop.push_back(sig);
    }
  }
  for (const Hash128& sig : to_drop) {
    store_->Invalidate(sig).ok();
    view_inputs_.erase(sig);
  }
  return to_drop.size();
}

void ViewManager::InvalidateAll() {
  store_->InvalidateAll();
  view_inputs_.clear();
}

}  // namespace cloudviews
