#ifndef CLOUDVIEWS_CORE_VIEW_SELECTION_H_
#define CLOUDVIEWS_CORE_VIEW_SELECTION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "core/workload_repository.h"

namespace cloudviews {

// A scored materialization candidate.
struct ViewCandidate {
  Hash128 strict_signature;
  Hash128 recurring_signature;
  int64_t occurrences = 0;
  double avg_cpu_cost = 0.0;     // cost of recomputing once
  double read_cost = 0.0;        // cost of scanning the materialized copy
  uint64_t storage_bytes = 0;    // materialized size
  double utility = 0.0;          // expected total processing-time savings
  size_t subtree_size = 1;
  std::vector<std::string> virtual_clusters;
};

// Selection strategy (ablation axis; the paper ships BigSubs-style
// selection, the others are baselines).
enum class SelectionStrategy {
  kGreedyRatio,   // utility-per-byte greedy knapsack
  kTopKFrequency, // most-repeated first, ignoring utility
  kBigSubs,       // label-propagation-style marginal-utility rounds
  kNoBudget,      // everything with positive utility (upper bound)
};

const char* SelectionStrategyName(SelectionStrategy strategy);

struct SelectionConstraints {
  uint64_t storage_budget_bytes = 64ull << 20;  // per VC when per-VC mode
  int max_views = 10000;                        // cap on selected views
  SelectionStrategy strategy = SelectionStrategy::kBigSubs;
  // Per-customer selection: partition candidates by virtual cluster and
  // apply the budget within each VC (paper section 4).
  bool per_virtual_cluster = true;
  // Schedule-aware selection: skip subexpressions whose consumers are
  // submitted concurrently with the producer, since the view cannot finish
  // materializing in time (paper section 4).
  bool schedule_aware = true;
  // Two instances within this window count as concurrent submissions (the
  // producer cannot finish materializing in time).
  double concurrency_window_seconds = 120.0;
  // Candidates where fewer than this fraction of instances could reuse are
  // dropped entirely; the rest have their utility scaled by the fraction.
  double min_reusable_fraction = 0.3;
  // Minimum recurrences before a subexpression is worth materializing.
  int64_t min_occurrences = 2;
};

// Result of one selection run, also surfaced to customers as insights
// ("view selection output is made available to customers").
struct SelectionResult {
  std::vector<ViewCandidate> selected;
  std::unordered_set<Hash128, Hash128Hasher> selected_strict;
  double expected_savings = 0.0;   // total expected cpu-cost savings
  uint64_t total_storage_bytes = 0;
  int64_t candidates_considered = 0;
  int64_t rejected_schedule = 0;   // dropped by schedule-aware filtering
  int64_t rejected_budget = 0;
  int64_t rejected_utility = 0;

  bool Contains(const Hash128& strict) const {
    return selected_strict.count(strict) > 0;
  }
};

// Periodic offline view selection over the workload repository.
class ViewSelector {
 public:
  explicit ViewSelector(SelectionConstraints constraints = {})
      : constraints_(constraints) {}

  // Runs selection over the repository's current contents.
  SelectionResult Select(const WorkloadRepository& repository) const;

  // Builds the scored candidate list without applying budgets (exposed for
  // analysis and the insights notebook).
  std::vector<ViewCandidate> ScoreCandidates(
      const WorkloadRepository& repository) const;

  const SelectionConstraints& constraints() const { return constraints_; }

 private:
  // Fraction of the group's observed instances that were submitted late
  // enough after the first instance of their day to reuse a view the first
  // instance materializes. 1.0 = fully reusable; ~0 = purely concurrent.
  double ReusableFraction(const SubexpressionGroup& group) const;

  std::vector<ViewCandidate> ApplyBudget(std::vector<ViewCandidate> candidates,
                                         const WorkloadRepository& repository,
                                         uint64_t budget, int max_views,
                                         SelectionResult* result) const;

  SelectionConstraints constraints_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_VIEW_SELECTION_H_
