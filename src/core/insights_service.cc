#include "core/insights_service.h"

#include <cstdlib>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace cloudviews {

bool ReuseControls::IsEnabled(const std::string& cluster,
                              const std::string& vc,
                              bool job_level_enabled) const {
  if (!service_enabled) return false;
  if (disabled_clusters.count(cluster) > 0) return false;
  if (opt_out_model) {
    if (disabled_vcs.count(vc) > 0) return false;
  } else {
    if (enabled_vcs.count(vc) == 0) return false;
  }
  return job_level_enabled;
}

void InsightsService::PublishSelection(const SelectionResult& selection) {
  annotations_.clear();
  for (const ViewCandidate& cand : selection.selected) {
    AnnotationEntry entry;
    entry.recurring_signature = cand.recurring_signature;
    // Tags are short, human-greppable keys derived from the signature; in
    // production they also support access control.
    entry.tag = "cv-" + cand.recurring_signature.ToHex().substr(0, 12);
    entry.expected_utility = cand.utility;
    entry.observed_occurrences = cand.occurrences;
    annotations_[cand.recurring_signature] = std::move(entry);
  }
}

std::vector<AnnotationEntry> InsightsService::FetchAnnotations(
    const std::vector<Hash128>& recurring_signatures) const {
  static obs::Counter& fetches = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kInsightsFetches);
  fetches.Increment();
  fetch_count_.fetch_add(1, std::memory_order_relaxed);
  std::vector<AnnotationEntry> out;
  for (const Hash128& sig : recurring_signatures) {
    auto it = annotations_.find(sig);
    if (it != annotations_.end()) out.push_back(it->second);
  }
  return out;
}

std::unordered_set<Hash128, Hash128Hasher> InsightsService::AllCandidates()
    const {
  std::unordered_set<Hash128, Hash128Hasher> out;
  out.reserve(annotations_.size());
  for (const auto& [sig, entry] : annotations_) out.insert(sig);
  return out;
}

std::string InsightsService::ExportAnnotationsFile() const {
  std::string out = "# CloudViews query annotations\n";
  out += "# tag, recurring_signature, expected_utility, occurrences\n";
  for (const auto& [sig, entry] : annotations_) {
    out += entry.tag + ", " + sig.ToHex() + ", " +
           std::to_string(entry.expected_utility) + ", " +
           std::to_string(entry.observed_occurrences) + "\n";
  }
  return out;
}

Status InsightsService::ImportAnnotationsFile(const std::string& contents) {
  std::unordered_map<Hash128, AnnotationEntry, Hash128Hasher> imported;
  size_t pos = 0;
  int line_number = 0;
  while (pos < contents.size()) {
    size_t end = contents.find('\n', pos);
    if (end == std::string::npos) end = contents.size();
    std::string line = contents.substr(pos, end - pos);
    pos = end + 1;
    line_number += 1;
    if (line.empty() || line[0] == '#') continue;
    // Format: tag, recurring_signature, expected_utility, occurrences
    AnnotationEntry entry;
    std::vector<std::string> fields;
    size_t start = 0;
    while (start <= line.size()) {
      size_t comma = line.find(", ", start);
      if (comma == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, comma - start));
      start = comma + 2;
    }
    if (fields.size() != 4 ||
        !Hash128::FromHex(fields[1], &entry.recurring_signature)) {
      return Status::Corruption("malformed annotation at line " +
                                std::to_string(line_number));
    }
    entry.tag = fields[0];
    entry.expected_utility = std::atof(fields[2].c_str());
    entry.observed_occurrences = std::atoll(fields[3].c_str());
    imported[entry.recurring_signature] = std::move(entry);
  }
  annotations_ = std::move(imported);
  return Status::OK();
}

void InsightsService::RecordProfile(const obs::QueryProfile& profile) {
  profiles_.push_back(profile);
  while (profiles_.size() > kMaxProfiles) profiles_.pop_front();
}

bool InsightsService::TryAcquireViewLock(const Hash128& strict_signature,
                                         int64_t job_id) {
  auto [it, inserted] = view_locks_.emplace(strict_signature, job_id);
  return inserted || it->second == job_id;
}

Status InsightsService::ReleaseViewLock(const Hash128& strict_signature,
                                        int64_t job_id) {
  auto it = view_locks_.find(strict_signature);
  if (it == view_locks_.end()) {
    return Status::NotFound("no lock held for signature " +
                            strict_signature.ToHex());
  }
  if (it->second != job_id) {
    return Status::InvalidArgument(
        "lock for " + strict_signature.ToHex() + " held by job " +
        std::to_string(it->second) + ", not job " + std::to_string(job_id));
  }
  view_locks_.erase(it);
  return Status::OK();
}

}  // namespace cloudviews
