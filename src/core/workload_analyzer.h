#ifndef CLOUDVIEWS_CORE_WORKLOAD_ANALYZER_H_
#define CLOUDVIEWS_CORE_WORKLOAD_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/workload_repository.h"

namespace cloudviews {

// A generalized-reuse opportunity (paper section 5.3 / Figure 8): several
// syntactically distinct subexpressions that join the same set of inputs.
// They could be merged into one more general materialized view and answered
// via containment checks.
struct GeneralizedOpportunity {
  std::vector<std::string> input_datasets;  // the shared join-input set
  int64_t distinct_subexpressions = 0;      // how many strict signatures
  int64_t total_frequency = 0;              // occurrences across all of them
};

// Point on a cumulative-distribution curve (Figure 2): fraction of datasets
// (x) vs number of distinct consumers (y).
struct ConsumerCdfPoint {
  double fraction_of_datasets = 0.0;
  int64_t distinct_consumers = 0;
};

// Offline analyses over the workload repository, beyond what view selection
// needs. This is the machinery behind the paper's workload-characterization
// figures and the "workload insights notebook" experience.
class WorkloadAnalyzer {
 public:
  explicit WorkloadAnalyzer(const WorkloadRepository* repository)
      : repository_(repository) {}

  // Groups multi-input subexpressions by their input-dataset set and
  // reports the sets touched by more than one distinct subexpression,
  // sorted by total frequency descending (Figure 8).
  std::vector<GeneralizedOpportunity> GeneralizedReuseOpportunities(
      int64_t min_distinct = 2) const;

  // Builds the consumers-per-dataset CDF from a consumer-count list
  // (Figure 2). Static: the counts come from the workload generator or an
  // external trace, not the repository.
  static std::vector<ConsumerCdfPoint> ConsumerCdf(
      std::vector<int64_t> consumers_per_dataset);

 private:
  const WorkloadRepository* repository_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_WORKLOAD_ANALYZER_H_
