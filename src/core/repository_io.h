#ifndef CLOUDVIEWS_CORE_REPOSITORY_IO_H_
#define CLOUDVIEWS_CORE_REPOSITORY_IO_H_

#include <string>

#include "common/status.h"
#include "core/workload_repository.h"

namespace cloudviews {

// Durable workload-repository snapshots. The production repository is a
// persistent store fed by telemetry and consumed by periodic analysis jobs;
// these helpers serialize the aggregated groups to a versioned, line-based
// text format so an analysis can resume where the previous one stopped
// (and so tests and benches can snapshot mined workloads).
//
// Format (one record per line, tab-separated):
//   cloudviews-repository v1
//   <strict_hex> <recurring_hex> occurrences subtree_size eligible
//       cost_samples total_cpu last_rows last_bytes first_day last_day
//       vc1,vc2,... dataset1,dataset2,...
// Per-instance history (recent_instances) is intentionally not persisted —
// schedule analysis always re-derives from fresh telemetry.

// Serializes the repository's aggregate state.
std::string SerializeRepository(const WorkloadRepository& repository);

// Restores a repository from a snapshot produced by SerializeRepository.
// The target repository must be empty.
Status DeserializeRepository(const std::string& snapshot,
                             WorkloadRepository* repository);

// File convenience wrappers. Both retry transient store faults (the
// core.repository.read/write injection sites) up to 3 attempts before
// surfacing the error; real parse/corruption errors are never retried.
Status SaveRepository(const WorkloadRepository& repository,
                      const std::string& path);
Status LoadRepository(const std::string& path,
                      WorkloadRepository* repository);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_REPOSITORY_IO_H_
