#include "core/workload_analyzer.h"

#include <algorithm>
#include <map>

namespace cloudviews {

std::vector<GeneralizedOpportunity>
WorkloadAnalyzer::GeneralizedReuseOpportunities(int64_t min_distinct) const {
  // Key: the sorted input-dataset set (joined with '|').
  struct Bucket {
    std::vector<std::string> inputs;
    int64_t distinct = 0;
    int64_t frequency = 0;
  };
  std::map<std::string, Bucket> buckets;
  for (const SubexpressionGroup* group : repository_->AllGroups()) {
    if (group->input_datasets.size() < 2) continue;  // joins only
    std::string key;
    for (const std::string& name : group->input_datasets) {
      key += name;
      key += '|';
    }
    Bucket& bucket = buckets[key];
    if (bucket.inputs.empty()) bucket.inputs = group->input_datasets;
    bucket.distinct += 1;
    bucket.frequency += group->occurrences;
  }
  std::vector<GeneralizedOpportunity> out;
  for (auto& [key, bucket] : buckets) {
    if (bucket.distinct < min_distinct) continue;
    GeneralizedOpportunity opp;
    opp.input_datasets = std::move(bucket.inputs);
    opp.distinct_subexpressions = bucket.distinct;
    opp.total_frequency = bucket.frequency;
    out.push_back(std::move(opp));
  }
  std::sort(out.begin(), out.end(),
            [](const GeneralizedOpportunity& a,
               const GeneralizedOpportunity& b) {
              return a.total_frequency > b.total_frequency;
            });
  return out;
}

std::vector<ConsumerCdfPoint> WorkloadAnalyzer::ConsumerCdf(
    std::vector<int64_t> consumers_per_dataset) {
  std::sort(consumers_per_dataset.begin(), consumers_per_dataset.end());
  std::vector<ConsumerCdfPoint> out;
  size_t n = consumers_per_dataset.size();
  for (size_t i = 0; i < n; ++i) {
    ConsumerCdfPoint point;
    point.fraction_of_datasets =
        static_cast<double>(i + 1) / static_cast<double>(n);
    point.distinct_consumers = consumers_per_dataset[i];
    out.push_back(point);
  }
  return out;
}

}  // namespace cloudviews
