#include "core/workload_compression.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cloudviews {

CompressedWorkload CompressWorkload(const WorkloadRepository& repository,
                                    CompressionOptions options) {
  CompressedWorkload out;

  // Build the bipartite incidence: job -> set of subexpression groups, and
  // each group's weight (cost mass or 1).
  struct GroupInfo {
    double weight = 1.0;
    int index = 0;
  };
  std::unordered_map<Hash128, GroupInfo, Hash128Hasher> group_info;
  std::unordered_map<int64_t, std::vector<int>> job_groups;
  double total_mass = 0.0;
  int group_counter = 0;
  for (const SubexpressionGroup* group : repository.AllGroups()) {
    if (group->recent_instances.empty()) continue;
    GroupInfo info;
    info.weight = options.cost_weighted
                      ? std::max(1.0, group->AvgCpuCost())
                      : 1.0;
    info.index = group_counter++;
    total_mass += info.weight;
    group_info.emplace(group->strict_signature, info);
    for (const auto& [job_id, t] : group->recent_instances) {
      job_groups[job_id].push_back(info.index);
    }
  }
  out.jobs_in_workload = static_cast<int64_t>(job_groups.size());
  if (job_groups.empty() || total_mass <= 0.0) return out;

  // Weight lookup by group index.
  std::vector<double> weight(static_cast<size_t>(group_counter), 1.0);
  for (const auto& [sig, info] : group_info) {
    weight[static_cast<size_t>(info.index)] = info.weight;
  }

  // Greedy cover: repeatedly take the job adding the most uncovered mass.
  std::vector<bool> covered(static_cast<size_t>(group_counter), false);
  double covered_mass = 0.0;
  std::unordered_set<int64_t> taken;
  while (covered_mass / total_mass < options.coverage_target &&
         static_cast<int>(taken.size()) < options.max_jobs) {
    int64_t best_job = -1;
    double best_gain = 0.0;
    for (const auto& [job_id, groups] : job_groups) {
      if (taken.count(job_id) > 0) continue;
      double gain = 0.0;
      for (int g : groups) {
        if (!covered[static_cast<size_t>(g)]) {
          gain += weight[static_cast<size_t>(g)];
        }
      }
      if (gain > best_gain ||
          (gain == best_gain && best_job >= 0 && job_id < best_job)) {
        best_gain = gain;
        best_job = job_id;
      }
    }
    if (best_job < 0 || best_gain <= 0.0) break;
    taken.insert(best_job);
    for (int g : job_groups[best_job]) {
      if (!covered[static_cast<size_t>(g)]) {
        covered[static_cast<size_t>(g)] = true;
        covered_mass += weight[static_cast<size_t>(g)];
      }
    }
  }

  out.representative_jobs.assign(taken.begin(), taken.end());
  std::sort(out.representative_jobs.begin(), out.representative_jobs.end());
  out.coverage = covered_mass / total_mass;
  out.compression_ratio =
      static_cast<double>(out.representative_jobs.size()) /
      static_cast<double>(out.jobs_in_workload);
  return out;
}

}  // namespace cloudviews
