#include "core/reuse_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sharing/producer.h"
#include "sharing/sharing_rewrite.h"
#include "verify/verify.h"

namespace cloudviews {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ReuseEngine::ReuseEngine(DatasetCatalog* catalog, ReuseEngineOptions options)
    : catalog_(catalog), options_(std::move(options)),
      view_store_(options_.view_ttl_seconds),
      view_manager_(&view_store_, &insights_, &provenance_) {
  view_store_.set_provenance(&provenance_);
  if (options_.enable_cardinality_feedback) {
    options_.optimizer.cardinality_feedback = &feedback_;
  }
  if (options_.optimizer.enable_generalized_matching) {
    repository_.generalized_index().SetSignatureOptions(
        options_.optimizer.signature_options);
    options_.optimizer.generalized_index = &repository_.generalized_index();
  }
  optimizer_ = std::make_unique<Optimizer>(catalog_, options_.optimizer);
  auditor_ = verify::SignatureAuditor(options_.optimizer.signature_options);
}

Result<LogicalOpPtr> ReuseEngine::BindPlan(const JobRequest& request) const {
  LogicalOpPtr bound;
  if (request.plan != nullptr) {
    bound = request.plan;
  } else {
    if (request.sql.empty()) {
      return Status::InvalidArgument("job has neither a plan nor SQL text");
    }
    PlanBuilder builder(catalog_);
    auto built = builder.BuildFromSql(request.sql);
    if (!built.ok()) return built.status();
    bound = std::move(built).value();
  }
  // Canonicalize: signatures only match across jobs whose equivalent
  // sub-plans normalize to the same shape (filter pushdown, conjunct order).
  LogicalOpPtr normalized = PlanNormalizer::Normalize(bound);
  if (options_.prune_columns) {
    normalized = PlanNormalizer::PruneColumns(normalized);
  }
  return normalized;
}

bool ReuseEngine::ReuseEnabledFor(const JobRequest& request) const {
  return options_.cloudviews_enabled &&
         insights_.controls().IsEnabled(options_.cluster_name,
                                        request.virtual_cluster,
                                        request.cloudviews_enabled);
}

Result<OptimizationOutcome> ReuseEngine::CompileJob(
    const JobRequest& request) {
  auto plan = BindPlan(request);
  if (!plan.ok()) return plan.status();
  return CompileBound(request, *plan, ReuseEnabledFor(request));
}

Result<OptimizationOutcome> ReuseEngine::CompileBound(
    const JobRequest& request, const LogicalOpPtr& bound,
    bool reuse_enabled) {
  const LogicalOpPtr& plan = bound;
  if constexpr (verify::RuntimeChecksEnabled()) {
    // Audit the as-compiled plan's signatures against everything this
    // engine has compiled before: a collision or instability here would
    // corrupt every downstream reuse decision keyed on these hashes.
    CLOUDVIEWS_RETURN_NOT_OK(auditor_.AuditPlan(*plan));
  }
  QueryAnnotations annotations;
  annotations.max_views_per_job = options_.max_views_per_job;
  if (reuse_enabled) {
    // Extract the job's tags (recurring signatures of its subexpressions)
    // and fetch the matching annotations from the insights service.
    std::vector<NodeSignature> sigs =
        optimizer_->signatures().ComputeAll(*plan);
    std::vector<Hash128> recurring;
    recurring.reserve(sigs.size());
    for (const NodeSignature& sig : sigs) recurring.push_back(sig.recurring);
    for (const AnnotationEntry& entry : insights_.FetchAnnotations(recurring)) {
      annotations.materialize_candidates.insert(entry.recurring_signature);
    }
  }

  Optimizer::TryLockFn try_lock;
  if (reuse_enabled) {
    try_lock = [this, &request](const Hash128& sig) {
      bool acquired = insights_.TryAcquireViewLock(sig, request.job_id);
      if (acquired) {
        provenance_.RecordLockAcquired(sig, request.job_id,
                                       request.submit_time);
      }
      return acquired;
    };
  }
  auto outcome = optimizer_->Optimize(
      plan, annotations, reuse_enabled ? &view_store_ : nullptr, try_lock,
      request.submit_time,
      obs::DecisionSink(&decisions_, request.job_id));
  if constexpr (verify::RuntimeChecksEnabled()) {
    if (outcome.ok()) {
      // Every subsumption hit is re-verified by the auditor's independent
      // serialization path — a containment-checker bug must not survive to
      // execution as a silent wrong result.
      for (const SubsumedMatchAudit& audit : outcome->subsumed_audits) {
        CLOUDVIEWS_RETURN_NOT_OK(auditor_.AuditSubsumption(
            *audit.query_subtree, *audit.view_definition, audit.residual));
      }
    }
  }
  return outcome;
}

Result<ReuseEngine::PreparedJob> ReuseEngine::PrepareJob(
    const JobRequest& request) {
  static obs::Counter& jobs_counter =
      obs::MetricsRegistry::Global().counter(obs::metric_names::kEngineJobs);
  jobs_counter.Increment();

  PreparedJob job;
  job.request = request;
  job.reuse_enabled = ReuseEnabledFor(request);
  job.profile.job_id = request.job_id;
  job.profile.virtual_cluster = request.virtual_cluster;
  job.profile.day = request.day;
  job.profile.reuse_enabled = job.reuse_enabled;

  // Bind first and keep the as-compiled plan: the workload repository counts
  // subexpressions as they appear in compiled plans, regardless of whether
  // execution later answers them from views.
  auto bind_start = std::chrono::steady_clock::now();
  auto bound = [&] {
    obs::Span span("parse", "engine");
    return BindPlan(request);
  }();
  if (!bound.ok()) return bound.status();
  job.bound_plan = std::move(*bound);
  job.compiled_sigs = optimizer_->signatures().ComputeAll(*job.bound_plan);
  job.profile.phases.push_back({"bind", SecondsSince(bind_start)});

  auto compile_start = std::chrono::steady_clock::now();
  auto outcome = CompileBound(request, job.bound_plan, job.reuse_enabled);
  if (!outcome.ok()) return outcome.status();
  job.outcome = std::move(*outcome);
  job.profile.phases.push_back({"compile", SecondsSince(compile_start)});

  JobExecution& exec = job.exec;
  exec.job_id = request.job_id;
  exec.reuse_enabled = job.reuse_enabled;
  exec.views_matched = job.outcome.views_matched;
  exec.views_matched_subsumed = job.outcome.views_matched_subsumed;
  exec.matched_signatures = job.outcome.matched_signatures;
  exec.matched_details = job.outcome.matched_details;
  exec.built_signatures = job.outcome.proposed_materializations;
  exec.estimated_cost = job.outcome.estimated_cost;
  exec.estimated_cost_without_reuse =
      job.outcome.estimated_cost_without_reuse;
  exec.executed_plan = job.outcome.plan;
  if (job.reuse_enabled) {
    exec.compile_overhead_seconds = InsightsService::kFetchLatencySeconds;
  }

  // Register the materializations this job will produce.
  for (const Hash128& strict : job.outcome.proposed_materializations) {
    // Locate the spool node to recover its recurring signature and inputs.
    std::vector<LogicalOp*> stack = {job.outcome.plan.get()};
    while (!stack.empty()) {
      LogicalOp* op = stack.back();
      stack.pop_back();
      if (op->kind == LogicalOpKind::kSpool && op->view_signature == strict) {
        NodeSignature child_sig =
            optimizer_->signatures().Compute(*op->children[0]);
        view_manager_
            .BeginMaterialize(strict, child_sig.recurring,
                              request.virtual_cluster,
                              op->children[0]->InputDatasets(),
                              request.job_id, request.submit_time)
            .ok();
        if (options_.optimizer.enable_generalized_matching) {
          // Index the definition for containment matching: later queries in
          // the same match class can be answered by this view even when
          // their strict signatures differ.
          repository_.generalized_index().Register(
              strict, child_sig.recurring, op->children[0]->Clone());
        }
        break;
      }
      for (const LogicalOpPtr& child : op->children) {
        stack.push_back(child.get());
      }
    }
  }
  return job;
}

Status ReuseEngine::ExecutePrepared(
    PreparedJob* job, const sharing::StreamDirectory* directory,
    std::vector<std::pair<Hash128, double>>* deferred_invalidations) {
  const JobRequest& request = job->request;
  JobExecution& exec = job->exec;

  // Execute with the sealing hook.
  int views_built = 0;
  ExecContext context;
  context.catalog = catalog_;
  context.view_store = &view_store_;
  context.job_seed = static_cast<uint64_t>(request.job_id) * 0x9E3779B9ULL +
                     static_cast<uint64_t>(request.day);
  context.now = request.submit_time;
  context.dop = options_.exec_dop;
  context.engine = options_.exec_engine;
  context.batch_rows = options_.exec_batch_rows;
  context.sharing = directory;
  context.sharing_wait_seconds = options_.sharing_wait_seconds;
  context.on_spool_complete = [this, &request, &views_built](
                                  const LogicalOp& spool, TablePtr contents,
                                  const OperatorStats& child_stats) {
    Status sealed = view_manager_.SealEarly(
        spool.view_signature, std::move(contents), child_stats.rows_out,
        child_stats.bytes_out, request.job_id,
        request.submit_time + options_.seal_delay_seconds);
    if (sealed.ok()) views_built += 1;
  };
  context.on_spool_abort = [this, &request](const LogicalOp& spool,
                                            const Status& cause) {
    view_manager_.AbortMaterialize(spool.view_signature, request.job_id,
                                   cause, request.submit_time);
  };

  Executor executor(context);
  auto exec_start = std::chrono::steady_clock::now();
  auto run = executor.Execute(job->outcome.plan);
  if (!run.ok()) {
    // Job failed: release creation locks and drop half-written views. (Only
    // materializing — never sealed — entries go away here, so concurrent
    // producer threads, which can only hold pointers to sealed views, are
    // unaffected.)
    view_manager_.AbandonJob(request.job_id,
                             job->outcome.proposed_materializations);
    if (job->outcome.plan_without_reuse == nullptr) return run.status();
    // Graceful degradation: a reuse artifact — a matched view, a spool, or
    // the machinery around them — failed at execution time. Invalidate what
    // was matched and re-run the unrewritten alternative the optimizer kept;
    // the query answers from base scans with byte-identical output.
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::Global().counter(
            obs::metric_names::kEngineFallbacks);
    fallbacks.Increment();
    obs::LogWarn("engine", "fallback_to_base_plan",
                 {{"job_id", request.job_id},
                  {"cause", run.status().ToString()},
                  {"views_matched", exec.views_matched}});
    for (const Hash128& sig : job->outcome.matched_signatures) {
      if (deferred_invalidations != nullptr) {
        // Mid-window, producer threads may still scan these views; erasure
        // waits until every stream has joined.
        deferred_invalidations->emplace_back(sig, request.submit_time);
      } else {
        view_store_.Invalidate(sig, request.submit_time).ok();
      }
    }
    views_built = 0;
    exec.views_matched = 0;
    exec.views_matched_subsumed = 0;
    exec.matched_signatures.clear();
    exec.matched_details.clear();
    exec.built_signatures.clear();
    exec.fell_back = true;
    exec.estimated_cost = job->outcome.estimated_cost_without_reuse;
    exec.executed_plan = job->outcome.plan_without_reuse;
    ExecContext fallback_context = context;
    fallback_context.on_spool_complete = nullptr;
    fallback_context.on_spool_abort = nullptr;
    fallback_context.sharing = nullptr;  // the base plan has no SharedScans
    Executor fallback_executor(fallback_context);
    run = fallback_executor.Execute(job->outcome.plan_without_reuse);
    if (!run.ok()) return run.status();
  }
  job->profile.phases.push_back({"execute", SecondsSince(exec_start)});
  exec.output = run->output;
  exec.stats = run->stats;
  exec.views_built = views_built;
  return Status::OK();
}

JobExecution ReuseEngine::FinalizeJob(PreparedJob job) {
  static obs::Counter& matched_counter =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kEngineViewsMatched);
  static obs::Counter& built_counter =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kEngineViewsBuilt);
  const JobRequest& request = job.request;
  JobExecution& exec = job.exec;
  obs::QueryProfile& profile = job.profile;

  // Record reuse hits (none when the job fell back to the base plan). The
  // per-hit attributed saving is the latency cost of recomputing the
  // replaced subtree minus the cost of scanning the view instead — the same
  // quantities the optimizer compared when it chose to reuse.
  for (const MatchedViewDetail& detail : exec.matched_details) {
    view_store_.RecordReuse(detail.strict).ok();
    provenance_.RecordHit(detail.strict, request.job_id, request.submit_time,
                          detail.recompute_latency_cost - detail.view_scan_cost,
                          detail.rows_avoided, detail.bytes_avoided,
                          request.queue_wait_seconds);
    if (detail.subsumed) {
      hits_subsumed_ += 1;
    } else {
      hits_exact_ += 1;
    }
  }

  // Feed the workload repository: occurrences come from the as-compiled
  // plan, runtime metrics from whatever actually executed (joined on
  // signature).
  auto ingest_start = std::chrono::steady_clock::now();
  {
    obs::Span span("ingest", "engine");
    std::vector<NodeSignature> executed_sigs =
        optimizer_->signatures().ComputeAll(*exec.executed_plan);
    MetricsBySignature metrics =
        WorkloadRepository::CollectMetrics(executed_sigs, exec.stats);
    repository_.IngestJob(request.job_id, request.virtual_cluster,
                          request.day, request.submit_time, job.compiled_sigs,
                          metrics);

    // Feed the cardinality micro-models with what executed.
    if (options_.enable_cardinality_feedback) {
      for (const NodeSignature& sig : executed_sigs) {
        if (!sig.eligible || sig.subtree_size < 2) continue;
        auto it = metrics.find(sig.strict);
        if (it != metrics.end()) {
          feedback_.Record(sig.recurring, it->second.rows, it->second.bytes);
        }
      }
    }
  }
  profile.phases.push_back({"ingest", SecondsSince(ingest_start)});

  // Assemble the per-query profile and hand it to the insights service.
  matched_counter.Add(static_cast<uint64_t>(exec.views_matched));
  built_counter.Add(static_cast<uint64_t>(exec.views_built));
  profile.views_matched = exec.views_matched;
  profile.views_built = exec.views_built;
  profile.matched_signatures.reserve(exec.matched_signatures.size());
  for (const Hash128& sig : exec.matched_signatures) {
    profile.matched_signatures.push_back(sig.ToHex());
  }
  profile.FillFromStats(exec.stats);
  exec.profile = profile;
  insights_.RecordProfile(std::move(profile));
  return std::move(job.exec);
}

Result<JobExecution> ReuseEngine::RunJob(const JobRequest& request) {
  obs::Span query_span("query", "engine");
  query_span.Arg("job_id", static_cast<int64_t>(request.job_id));
  query_span.Arg("vc", request.virtual_cluster);

  auto prepared = PrepareJob(request);
  if (!prepared.ok()) return prepared.status();
  CLOUDVIEWS_RETURN_NOT_OK(
      ExecutePrepared(&*prepared, /*directory=*/nullptr,
                      /*deferred_invalidations=*/nullptr));
  JobExecution exec = FinalizeJob(std::move(*prepared));
  query_span.Arg("views_matched", static_cast<int64_t>(exec.views_matched));
  query_span.Arg("views_built", static_cast<int64_t>(exec.views_built));
  return exec;
}

Result<std::vector<JobExecution>> ReuseEngine::RunSharedWindow(
    const std::vector<JobRequest>& requests) {
  std::vector<JobExecution> results;
  results.reserve(requests.size());
  // Sharing needs at least two in-flight jobs and the columnar engine (the
  // producer streams column batches); otherwise the window degrades to the
  // serial path, bytes unchanged.
  const bool sharable = options_.enable_sharing &&
                        options_.exec_engine == ExecEngine::kColumnar &&
                        requests.size() >= 2;
  if (!sharable) {
    for (const JobRequest& request : requests) {
      auto run = RunJob(request);
      if (!run.ok()) return run.status();
      results.push_back(std::move(*run));
    }
    return results;
  }

  obs::Span window_span("sharing-window", "engine");
  window_span.Arg("jobs", static_cast<int64_t>(requests.size()));

  // Compile every job first, in submit order — exactly the plans serial
  // RunJob calls would produce (view matching, locks, spools included).
  std::vector<PreparedJob> jobs;
  jobs.reserve(requests.size());
  double window_now = 0.0;
  for (const JobRequest& request : requests) {
    auto prepared = PrepareJob(request);
    if (!prepared.ok()) return prepared.status();
    window_now = std::max(window_now, request.submit_time);
    jobs.push_back(std::move(*prepared));
  }

  // Admission: register each optimized plan's eligible subexpressions, then
  // let the policy + rewrite elect producers.
  sharing::SharingRegistry registry;
  sharing::SharingPolicy policy(options_.sharing_policy);
  policy.LoadLedger(provenance_, window_now);
  std::vector<LogicalOpPtr*> plans;
  plans.reserve(jobs.size());
  for (PreparedJob& job : jobs) {
    plans.push_back(&job.outcome.plan);
    for (const NodeSignature& sig :
         optimizer_->signatures().ComputeAll(*job.outcome.plan)) {
      if (sig.eligible &&
          sig.subtree_size >= policy.options().min_subtree_size) {
        registry.Admit(job.request.job_id, sig.strict);
      }
    }
  }
  std::vector<obs::DecisionSink> decision_sinks;
  decision_sinks.reserve(jobs.size());
  for (const PreparedJob& job : jobs) {
    decision_sinks.emplace_back(&decisions_, job.request.job_id);
  }
  sharing::RewriteResult rewrite = sharing::RewriteForSharing(
      plans, optimizer_->signatures(), policy, &decision_sinks);

  // Spools that vanished in the rewrite (nested inside a replaced subtree,
  // or stripped by a share-now decision) will never seal: withdraw their
  // materializations now so the creation locks release.
  for (const auto& [job_index, sig] : rewrite.dropped_spools) {
    PreparedJob& job = jobs[job_index];
    view_manager_.AbandonJob(job.request.job_id, {sig});
    auto& built = job.exec.built_signatures;
    built.erase(std::remove(built.begin(), built.end(), sig), built.end());
    auto& proposed = job.outcome.proposed_materializations;
    proposed.erase(std::remove(proposed.begin(), proposed.end(), sig),
                   proposed.end());
  }

  // Launch one producer thread per elected stream. Producers see sealed
  // views (for ViewScans in the shared subtree) but no spool hooks and no
  // stream directory — their plans are spool- and SharedScan-free clones.
  static obs::Counter& fanout_counter = obs::MetricsRegistry::Global().counter(
      obs::metric_names::kSharingFanout);
  std::vector<sharing::ProducerStats> producer_stats(rewrite.streams.size());
  std::vector<std::thread> producers;
  producers.reserve(rewrite.streams.size());
  for (size_t i = 0; i < rewrite.streams.size(); ++i) {
    const sharing::StreamPlan* stream_plan = &rewrite.streams[i];
    sharing::SharedStream* stream =
        registry.CreateStream(stream_plan->strict, stream_plan->fanout);
    fanout_counter.Add(static_cast<uint64_t>(stream_plan->fanout));
    const JobRequest& elected = jobs[stream_plan->elected_job].request;
    ExecContext context;
    context.catalog = catalog_;
    context.view_store = &view_store_;
    // Shared subtrees are signature-eligible, hence free of
    // non-deterministic UDOs: the seed never affects their output. Set to
    // the elected job's seed anyway so a debug trace reads sensibly.
    context.job_seed = static_cast<uint64_t>(elected.job_id) * 0x9E3779B9ULL +
                       static_cast<uint64_t>(elected.day);
    context.now = elected.submit_time;
    context.dop = options_.exec_dop;
    context.engine = ExecEngine::kColumnar;
    context.batch_rows = options_.exec_batch_rows;
    producers.emplace_back(
        [context, stream_plan, stream, stats = &producer_stats[i]] {
          Status status = sharing::RunProducer(
              context, stream_plan->producer_plan, stream, stats);
          if (!status.ok()) {
            obs::LogWarn("sharing", "producer_aborted",
                         {{"signature", stream_plan->strict.ToHex()},
                          {"cause", status.ToString()}});
          }
        });
  }

  // Execute the jobs serially on this thread while the producers stream.
  // Jobs wait on streams (never the reverse), so the window cannot
  // deadlock; a hard job failure still joins every producer before
  // returning.
  std::vector<std::pair<Hash128, double>> deferred_invalidations;
  Status window_status;
  for (PreparedJob& job : jobs) {
    window_status =
        ExecutePrepared(&job, &registry, &deferred_invalidations);
    if (!window_status.ok()) break;
  }
  for (std::thread& producer : producers) producer.join();
  for (const auto& [sig, when] : deferred_invalidations) {
    view_store_.Invalidate(sig, when).ok();
  }
  CLOUDVIEWS_RETURN_NOT_OK(window_status);

  // Fold the window's telemetry.
  sharing_stats_.windows += 1;
  for (size_t i = 0; i < rewrite.streams.size(); ++i) {
    const sharing::SharedStream& stream = *registry.streams()[i];
    sharing_stats_.streams += 1;
    sharing_stats_.fanout += static_cast<int64_t>(stream.fanout());
    sharing_stats_.hits += static_cast<int64_t>(stream.subscribers_served());
    sharing_stats_.detaches +=
        static_cast<int64_t>(stream.subscribers_detached());
    sharing_stats_.batches_produced += producer_stats[i].batches;
    sharing_stats_.producer_cpu_cost += producer_stats[i].cpu_cost;
    sharing_stats_.rows_shared += stream.rows_published();
    sharing_stats_.bytes_shared += stream.bytes_published();
    if (stream.state() == sharing::SharedStream::State::kAborted) {
      sharing_stats_.producer_aborts += 1;
    } else {
      // Savings only count when the stream actually served its window;
      // aborted streams made subscribers recompute via their fallbacks.
      sharing_stats_.saved_cost += rewrite.streams[i].saved_cost;
    }
  }
  window_span.Arg("streams", static_cast<int64_t>(rewrite.streams.size()));

  for (PreparedJob& job : jobs) {
    results.push_back(FinalizeJob(std::move(job)));
  }
  return results;
}

SelectionResult ReuseEngine::RunViewSelection(double now) {
  if constexpr (verify::RuntimeChecksEnabled()) {
    // Selection trusts repository aggregates; cross-check them against the
    // signatures of every plan compiled so far before choosing views.
    Status audit = auditor_.CrossCheckGroups(repository_.AuditGroups());
    if (!audit.ok()) {
      obs::LogError("engine", "repository_audit_failed",
                    {{"status", audit.ToString()}});
    }
  }
  SelectionConstraints constraints = options_.selection;
  ViewSelector selector(constraints);
  SelectionResult result = selector.Select(repository_);
  // The ledger's candidate events open the lifecycle: this is where a
  // subexpression was judged worth materializing. The candidate's strict
  // signature is the last observed instance; future instances may
  // materialize under fresh strict signatures (their streams then open at
  // lock acquisition instead).
  for (const ViewCandidate& candidate : result.selected) {
    provenance_.RecordCandidate(
        candidate.strict_signature, candidate.recurring_signature,
        candidate.virtual_clusters.empty() ? std::string()
                                           : candidate.virtual_clusters[0],
        candidate.utility, now);
  }
  insights_.PublishSelection(result);
  return result;
}

void ReuseEngine::Maintenance(double now) { view_manager_.PurgeExpired(now); }

size_t ReuseEngine::OnDatasetUpdated(const std::string& dataset_name) {
  return view_manager_.InvalidateByDataset(dataset_name);
}

void ReuseEngine::OnRuntimeVersionChange(uint64_t new_version) {
  options_.optimizer.signature_options.runtime_version = new_version;
  optimizer_ = std::make_unique<Optimizer>(catalog_, options_.optimizer);
  // All hashes moved: the auditor's accumulated hash<->canonical maps are
  // keyed by the old version and must restart from scratch.
  auditor_ = verify::SignatureAuditor(options_.optimizer.signature_options);
  // Every existing view and annotation was keyed by the old signatures.
  view_manager_.InvalidateAll();
  // Indexed definitions carry old-version class keys and strict signatures.
  repository_.generalized_index().SetSignatureOptions(
      options_.optimizer.signature_options);
  insights_.PublishSelection(SelectionResult{});
}

}  // namespace cloudviews
