#include "core/reuse_engine.h"

#include <chrono>

#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/verify.h"

namespace cloudviews {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ReuseEngine::ReuseEngine(DatasetCatalog* catalog, ReuseEngineOptions options)
    : catalog_(catalog), options_(std::move(options)),
      view_store_(options_.view_ttl_seconds),
      view_manager_(&view_store_, &insights_, &provenance_) {
  view_store_.set_provenance(&provenance_);
  if (options_.enable_cardinality_feedback) {
    options_.optimizer.cardinality_feedback = &feedback_;
  }
  optimizer_ = std::make_unique<Optimizer>(catalog_, options_.optimizer);
  auditor_ = verify::SignatureAuditor(options_.optimizer.signature_options);
}

Result<LogicalOpPtr> ReuseEngine::BindPlan(const JobRequest& request) const {
  LogicalOpPtr bound;
  if (request.plan != nullptr) {
    bound = request.plan;
  } else {
    if (request.sql.empty()) {
      return Status::InvalidArgument("job has neither a plan nor SQL text");
    }
    PlanBuilder builder(catalog_);
    auto built = builder.BuildFromSql(request.sql);
    if (!built.ok()) return built.status();
    bound = std::move(built).value();
  }
  // Canonicalize: signatures only match across jobs whose equivalent
  // sub-plans normalize to the same shape (filter pushdown, conjunct order).
  LogicalOpPtr normalized = PlanNormalizer::Normalize(bound);
  if (options_.prune_columns) {
    normalized = PlanNormalizer::PruneColumns(normalized);
  }
  return normalized;
}

bool ReuseEngine::ReuseEnabledFor(const JobRequest& request) const {
  return options_.cloudviews_enabled &&
         insights_.controls().IsEnabled(options_.cluster_name,
                                        request.virtual_cluster,
                                        request.cloudviews_enabled);
}

Result<OptimizationOutcome> ReuseEngine::CompileJob(
    const JobRequest& request) {
  auto plan = BindPlan(request);
  if (!plan.ok()) return plan.status();
  return CompileBound(request, *plan, ReuseEnabledFor(request));
}

Result<OptimizationOutcome> ReuseEngine::CompileBound(
    const JobRequest& request, const LogicalOpPtr& bound,
    bool reuse_enabled) {
  const LogicalOpPtr& plan = bound;
  if constexpr (verify::RuntimeChecksEnabled()) {
    // Audit the as-compiled plan's signatures against everything this
    // engine has compiled before: a collision or instability here would
    // corrupt every downstream reuse decision keyed on these hashes.
    CLOUDVIEWS_RETURN_NOT_OK(auditor_.AuditPlan(*plan));
  }
  QueryAnnotations annotations;
  annotations.max_views_per_job = options_.max_views_per_job;
  if (reuse_enabled) {
    // Extract the job's tags (recurring signatures of its subexpressions)
    // and fetch the matching annotations from the insights service.
    std::vector<NodeSignature> sigs =
        optimizer_->signatures().ComputeAll(*plan);
    std::vector<Hash128> recurring;
    recurring.reserve(sigs.size());
    for (const NodeSignature& sig : sigs) recurring.push_back(sig.recurring);
    for (const AnnotationEntry& entry : insights_.FetchAnnotations(recurring)) {
      annotations.materialize_candidates.insert(entry.recurring_signature);
    }
  }

  Optimizer::TryLockFn try_lock;
  if (reuse_enabled) {
    try_lock = [this, &request](const Hash128& sig) {
      bool acquired = insights_.TryAcquireViewLock(sig, request.job_id);
      if (acquired) {
        provenance_.RecordLockAcquired(sig, request.job_id,
                                       request.submit_time);
      }
      return acquired;
    };
  }
  return optimizer_->Optimize(plan, annotations,
                              reuse_enabled ? &view_store_ : nullptr,
                              try_lock, request.submit_time);
}

Result<JobExecution> ReuseEngine::RunJob(const JobRequest& request) {
  static obs::Counter& jobs_counter =
      obs::MetricsRegistry::Global().counter(obs::metric_names::kEngineJobs);
  static obs::Counter& matched_counter =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kEngineViewsMatched);
  static obs::Counter& built_counter =
      obs::MetricsRegistry::Global().counter(
          obs::metric_names::kEngineViewsBuilt);
  jobs_counter.Increment();

  obs::Span query_span("query", "engine");
  query_span.Arg("job_id", static_cast<int64_t>(request.job_id));
  query_span.Arg("vc", request.virtual_cluster);

  const bool reuse_enabled = ReuseEnabledFor(request);
  obs::QueryProfile profile;
  profile.job_id = request.job_id;
  profile.virtual_cluster = request.virtual_cluster;
  profile.day = request.day;
  profile.reuse_enabled = reuse_enabled;

  // Bind first and keep the as-compiled plan: the workload repository counts
  // subexpressions as they appear in compiled plans, regardless of whether
  // execution later answers them from views.
  auto bind_start = std::chrono::steady_clock::now();
  auto bound = [&] {
    obs::Span span("parse", "engine");
    return BindPlan(request);
  }();
  if (!bound.ok()) return bound.status();
  std::vector<NodeSignature> compiled_sigs =
      optimizer_->signatures().ComputeAll(**bound);
  profile.phases.push_back({"bind", SecondsSince(bind_start)});

  auto compile_start = std::chrono::steady_clock::now();
  auto outcome = CompileBound(request, *bound, reuse_enabled);
  if (!outcome.ok()) return outcome.status();
  profile.phases.push_back({"compile", SecondsSince(compile_start)});

  JobExecution exec;
  exec.job_id = request.job_id;
  exec.reuse_enabled = reuse_enabled;
  exec.views_matched = outcome->views_matched;
  exec.matched_signatures = outcome->matched_signatures;
  exec.matched_details = outcome->matched_details;
  exec.built_signatures = outcome->proposed_materializations;
  exec.estimated_cost = outcome->estimated_cost;
  exec.estimated_cost_without_reuse = outcome->estimated_cost_without_reuse;
  exec.executed_plan = outcome->plan;
  if (reuse_enabled) {
    exec.compile_overhead_seconds = InsightsService::kFetchLatencySeconds;
  }

  // Register the materializations this job will produce.
  for (const Hash128& strict : outcome->proposed_materializations) {
    // Locate the spool node to recover its recurring signature and inputs.
    std::vector<LogicalOp*> stack = {outcome->plan.get()};
    while (!stack.empty()) {
      LogicalOp* op = stack.back();
      stack.pop_back();
      if (op->kind == LogicalOpKind::kSpool && op->view_signature == strict) {
        NodeSignature child_sig =
            optimizer_->signatures().Compute(*op->children[0]);
        view_manager_
            .BeginMaterialize(strict, child_sig.recurring,
                              request.virtual_cluster,
                              op->children[0]->InputDatasets(),
                              request.job_id, request.submit_time)
            .ok();
        break;
      }
      for (const LogicalOpPtr& child : op->children) {
        stack.push_back(child.get());
      }
    }
  }

  // Execute with the sealing hook.
  int views_built = 0;
  ExecContext context;
  context.catalog = catalog_;
  context.view_store = &view_store_;
  context.job_seed = static_cast<uint64_t>(request.job_id) * 0x9E3779B9ULL +
                     static_cast<uint64_t>(request.day);
  context.now = request.submit_time;
  context.dop = options_.exec_dop;
  context.engine = options_.exec_engine;
  context.batch_rows = options_.exec_batch_rows;
  context.on_spool_complete = [this, &request, &views_built](
                                  const LogicalOp& spool, TablePtr contents,
                                  const OperatorStats& child_stats) {
    Status sealed = view_manager_.SealEarly(
        spool.view_signature, std::move(contents), child_stats.rows_out,
        child_stats.bytes_out, request.job_id,
        request.submit_time + options_.seal_delay_seconds);
    if (sealed.ok()) views_built += 1;
  };
  context.on_spool_abort = [this, &request](const LogicalOp& spool,
                                            const Status& cause) {
    view_manager_.AbortMaterialize(spool.view_signature, request.job_id,
                                   cause, request.submit_time);
  };

  Executor executor(context);
  auto exec_start = std::chrono::steady_clock::now();
  auto run = executor.Execute(outcome->plan);
  if (!run.ok()) {
    // Job failed: release creation locks and drop half-written views.
    view_manager_.AbandonJob(request.job_id,
                             outcome->proposed_materializations);
    if (outcome->plan_without_reuse == nullptr) return run.status();
    // Graceful degradation: a reuse artifact — a matched view, a spool, or
    // the machinery around them — failed at execution time. Invalidate what
    // was matched and re-run the unrewritten alternative the optimizer kept;
    // the query answers from base scans with byte-identical output.
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::Global().counter(
            obs::metric_names::kEngineFallbacks);
    fallbacks.Increment();
    obs::LogWarn("engine", "fallback_to_base_plan",
                 {{"job_id", request.job_id},
                  {"cause", run.status().ToString()},
                  {"views_matched", exec.views_matched}});
    for (const Hash128& sig : outcome->matched_signatures) {
      view_store_.Invalidate(sig, request.submit_time).ok();
    }
    views_built = 0;
    exec.views_matched = 0;
    exec.matched_signatures.clear();
    exec.matched_details.clear();
    exec.built_signatures.clear();
    exec.fell_back = true;
    exec.estimated_cost = outcome->estimated_cost_without_reuse;
    exec.executed_plan = outcome->plan_without_reuse;
    ExecContext fallback_context = context;
    fallback_context.on_spool_complete = nullptr;
    fallback_context.on_spool_abort = nullptr;
    Executor fallback_executor(fallback_context);
    run = fallback_executor.Execute(outcome->plan_without_reuse);
    if (!run.ok()) return run.status();
  }
  profile.phases.push_back({"execute", SecondsSince(exec_start)});
  exec.output = run->output;
  exec.stats = run->stats;
  exec.views_built = views_built;

  // Record reuse hits (none when the job fell back to the base plan). The
  // per-hit attributed saving is the latency cost of recomputing the
  // replaced subtree minus the cost of scanning the view instead — the same
  // quantities the optimizer compared when it chose to reuse.
  for (const MatchedViewDetail& detail : exec.matched_details) {
    view_store_.RecordReuse(detail.strict).ok();
    provenance_.RecordHit(detail.strict, request.job_id, request.submit_time,
                          detail.recompute_latency_cost - detail.view_scan_cost,
                          detail.rows_avoided, detail.bytes_avoided,
                          request.queue_wait_seconds);
  }

  // Feed the workload repository: occurrences come from the as-compiled
  // plan, runtime metrics from whatever actually executed (joined on
  // signature).
  auto ingest_start = std::chrono::steady_clock::now();
  {
    obs::Span span("ingest", "engine");
    std::vector<NodeSignature> executed_sigs =
        optimizer_->signatures().ComputeAll(*exec.executed_plan);
    MetricsBySignature metrics =
        WorkloadRepository::CollectMetrics(executed_sigs, exec.stats);
    repository_.IngestJob(request.job_id, request.virtual_cluster,
                          request.day, request.submit_time, compiled_sigs,
                          metrics);

    // Feed the cardinality micro-models with what executed.
    if (options_.enable_cardinality_feedback) {
      for (const NodeSignature& sig : executed_sigs) {
        if (!sig.eligible || sig.subtree_size < 2) continue;
        auto it = metrics.find(sig.strict);
        if (it != metrics.end()) {
          feedback_.Record(sig.recurring, it->second.rows, it->second.bytes);
        }
      }
    }
  }
  profile.phases.push_back({"ingest", SecondsSince(ingest_start)});

  // Assemble the per-query profile and hand it to the insights service.
  matched_counter.Add(static_cast<uint64_t>(exec.views_matched));
  built_counter.Add(static_cast<uint64_t>(exec.views_built));
  profile.views_matched = exec.views_matched;
  profile.views_built = exec.views_built;
  profile.matched_signatures.reserve(exec.matched_signatures.size());
  for (const Hash128& sig : exec.matched_signatures) {
    profile.matched_signatures.push_back(sig.ToHex());
  }
  profile.FillFromStats(exec.stats);
  query_span.Arg("views_matched",
                 static_cast<int64_t>(exec.views_matched));
  query_span.Arg("views_built", static_cast<int64_t>(exec.views_built));
  exec.profile = profile;
  insights_.RecordProfile(std::move(profile));
  return exec;
}

SelectionResult ReuseEngine::RunViewSelection(double now) {
  if constexpr (verify::RuntimeChecksEnabled()) {
    // Selection trusts repository aggregates; cross-check them against the
    // signatures of every plan compiled so far before choosing views.
    Status audit = auditor_.CrossCheckRepository(repository_);
    if (!audit.ok()) {
      obs::LogError("engine", "repository_audit_failed",
                    {{"status", audit.ToString()}});
    }
  }
  SelectionConstraints constraints = options_.selection;
  ViewSelector selector(constraints);
  SelectionResult result = selector.Select(repository_);
  // The ledger's candidate events open the lifecycle: this is where a
  // subexpression was judged worth materializing. The candidate's strict
  // signature is the last observed instance; future instances may
  // materialize under fresh strict signatures (their streams then open at
  // lock acquisition instead).
  for (const ViewCandidate& candidate : result.selected) {
    provenance_.RecordCandidate(
        candidate.strict_signature, candidate.recurring_signature,
        candidate.virtual_clusters.empty() ? std::string()
                                           : candidate.virtual_clusters[0],
        candidate.utility, now);
  }
  insights_.PublishSelection(result);
  return result;
}

void ReuseEngine::Maintenance(double now) { view_manager_.PurgeExpired(now); }

size_t ReuseEngine::OnDatasetUpdated(const std::string& dataset_name) {
  return view_manager_.InvalidateByDataset(dataset_name);
}

void ReuseEngine::OnRuntimeVersionChange(uint64_t new_version) {
  options_.optimizer.signature_options.runtime_version = new_version;
  optimizer_ = std::make_unique<Optimizer>(catalog_, options_.optimizer);
  // All hashes moved: the auditor's accumulated hash<->canonical maps are
  // keyed by the old version and must restart from scratch.
  auditor_ = verify::SignatureAuditor(options_.optimizer.signature_options);
  // Every existing view and annotation was keyed by the old signatures.
  view_manager_.InvalidateAll();
  insights_.PublishSelection(SelectionResult{});
}

}  // namespace cloudviews
