#ifndef CLOUDVIEWS_CORE_WORKLOAD_COMPRESSION_H_
#define CLOUDVIEWS_CORE_WORKLOAD_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "core/workload_repository.h"

namespace cloudviews {

// Workload compression — section 5.2: the signature infrastructure is also
// used for "compressing workloads into a representative set for
// pre-production evaluation". Given the repository's job/subexpression
// bipartite structure, pick the smallest job subset whose subexpressions
// cover a target fraction of the full workload's subexpression mass;
// replaying just those jobs exercises (almost) everything the full workload
// would.

struct CompressionOptions {
  // Stop once the selected jobs cover this fraction of the workload's
  // cost-weighted subexpression mass.
  double coverage_target = 0.95;
  // Hard cap on the representative set size.
  int max_jobs = 1000;
  // Weigh subexpressions by observed compute cost (true) or uniformly.
  bool cost_weighted = true;
};

struct CompressedWorkload {
  std::vector<int64_t> representative_jobs;
  double coverage = 0.0;          // achieved mass fraction
  int64_t jobs_in_workload = 0;   // distinct jobs seen in the repository
  double compression_ratio = 0.0; // representative / total jobs
};

// Greedy weighted set cover over the job -> subexpression incidence recorded
// in the repository's recent-instance lists.
CompressedWorkload CompressWorkload(const WorkloadRepository& repository,
                                    CompressionOptions options = {});

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_WORKLOAD_COMPRESSION_H_
