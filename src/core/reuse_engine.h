#ifndef CLOUDVIEWS_CORE_REUSE_ENGINE_H_
#define CLOUDVIEWS_CORE_REUSE_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/insights_service.h"
#include "core/view_manager.h"
#include "core/view_selection.h"
#include "core/workload_repository.h"
#include "exec/executor.h"
#include "obs/decision.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "optimizer/cardinality_feedback.h"
#include "optimizer/optimizer.h"
#include "plan/builder.h"
#include "plan/normalizer.h"
#include "sharing/sharing_policy.h"
#include "sharing/sharing_registry.h"
#include "storage/catalog.h"
#include "storage/view_store.h"
#include "verify/signature_auditor.h"

namespace cloudviews {

// Configuration of a ReuseEngine instance (one per cluster).
struct ReuseEngineOptions {
  std::string cluster_name = "cluster1";
  OptimizerOptions optimizer;
  SelectionConstraints selection;
  double view_ttl_seconds = 7 * 86400.0;  // one week, per production policy
  // Global (engine-level) switch; finer controls live in the insights
  // service (ReuseControls).
  bool cloudviews_enabled = true;
  int max_views_per_job = 4;
  // Cardinality feedback: serve per-recurring-signature observed row/byte
  // micro-models to the optimizer for every repeated subexpression (the
  // section 5.2 insights loop). Independent of materialization.
  bool enable_cardinality_feedback = false;
  // Column pruning during compilation: scans narrow to the columns used
  // downstream, which also shrinks materialized-view storage. Off by
  // default (pruned and unpruned plans have different signatures; a fleet
  // must flip this together, like a runtime-version change).
  bool prune_columns = false;
  // Degree of parallelism for job execution. The engine pins this to 1 by
  // default — simulator telemetry must be machine-independent, and measured
  // efficiency on a loaded CI box would leak into latency figures. Set to 0
  // for hardware concurrency or to an explicit DOP; outputs are identical
  // at any setting (the executor's morsel pipelines are order-preserving).
  int exec_dop = 1;
  // Physical engine for job execution. Both engines produce byte-identical
  // outputs and view contents; kRow is the reference path kept for
  // differential testing and incident triage.
  ExecEngine exec_engine = ExecEngine::kColumnar;
  // Rows per column batch when exec_engine is kColumnar.
  size_t exec_batch_rows = 1024;
  // Time between the producing job's submission and the view becoming
  // visible to other compilations. Early sealing publishes as soon as the
  // spool stage finishes — a couple of minutes — rather than at job
  // completion; raise this to job-scale durations to ablate early sealing.
  // Jobs submitted within this window of the producer cannot reuse the view
  // (the concurrent-submission problem of section 4).
  double seal_delay_seconds = 120.0;
  // Runtime work sharing across concurrently admitted jobs (RunSharedWindow):
  // when >= 2 jobs of a window cover the same eligible subexpression, one
  // producer pipeline executes it once and streams its batches to every
  // subscriber. Complements materialization, which only helps *later* jobs.
  // Columnar engine only; windows fall back to serial RunJob when disabled
  // or when exec_engine is kRow.
  bool enable_sharing = false;
  // Per-signature share / materialize / both decision knobs.
  sharing::SharingPolicyOptions sharing_policy;
  // Seconds a subscriber waits on a producer's next batch before detaching
  // to its fallback plan (<= 0: wait forever).
  double sharing_wait_seconds = 5.0;
};

// A job submitted to the engine.
struct JobRequest {
  int64_t job_id = 0;
  std::string virtual_cluster = "vc0";
  // Either a pre-built logical plan or SQL text (bound against the catalog).
  LogicalOpPtr plan;
  std::string sql;
  double submit_time = 0.0;
  int day = 0;
  bool cloudviews_enabled = true;  // job-level toggle
  // Seconds the job waited for cluster capacity before submit_time. Purely
  // observational: attached to reuse-hit provenance events so savings can be
  // correlated with queueing pressure.
  double queue_wait_seconds = 0.0;
};

// Everything observed about one executed job.
struct JobExecution {
  int64_t job_id = 0;
  TablePtr output;
  ExecutionStats stats;
  LogicalOpPtr executed_plan;
  int views_matched = 0;
  int views_matched_subsumed = 0;  // generalized (containment) hits
  int views_built = 0;
  std::vector<Hash128> matched_signatures;
  // Per-match attribution detail (same order as matched_signatures); empty
  // after a fallback, like matched_signatures.
  std::vector<MatchedViewDetail> matched_details;
  std::vector<Hash128> built_signatures;
  double estimated_cost = 0.0;
  double estimated_cost_without_reuse = 0.0;
  // Compile-time overhead charged for fetching annotations.
  double compile_overhead_seconds = 0.0;
  bool reuse_enabled = false;  // after applying all control levels
  // The rewritten plan failed at execution time (corrupt view, spool fault)
  // and the job was answered by re-executing the unrewritten base plan.
  bool fell_back = false;
  // Phase breakdown + executor roll-up; also retained by the insights
  // service (`recent_profiles()`) for post-hoc debugging.
  obs::QueryProfile profile;
};

// The CloudViews engine: ties together the optimizer, executor, workload
// repository, view selection, insights service, and view storage. One
// instance manages one cluster; virtual clusters share it (as in Cosmos).
//
// Typical usage:
//   ReuseEngine engine(&catalog, options);
//   engine.insights().controls().enabled_vcs.insert("vc0");  // opt-in
//   auto exec = engine.RunJob(request);        // repeat for the workload
//   engine.RunViewSelection();                 // periodic offline analysis
//   engine.Maintenance(now);                   // purge expired views
class ReuseEngine {
 public:
  ReuseEngine(DatasetCatalog* catalog, ReuseEngineOptions options = {});

  ReuseEngine(const ReuseEngine&) = delete;
  ReuseEngine& operator=(const ReuseEngine&) = delete;

  // Compiles (binds + optimizes with reuse) and executes a job, recording
  // its subexpressions into the workload repository.
  Result<JobExecution> RunJob(const JobRequest& request);

  // Runs one window of concurrently in-flight jobs with runtime work
  // sharing. All jobs are compiled first (in submit order, exactly as
  // serial RunJob calls would); the shared-subexpression rewrite then
  // elects one producer per subexpression covered by >= 2 jobs and wires
  // every other occurrence to its stream. Producers run on their own
  // threads while the jobs execute serially on the calling thread, so the
  // shared subtree is computed once per window. Per-job outputs are
  // byte-identical to serial RunJob at every DOP and batch size — including
  // under producer aborts, where subscribers detach to private fallback
  // execution. With sharing disabled (or on the row engine) this degrades
  // to serial RunJob calls.
  Result<std::vector<JobExecution>> RunSharedWindow(
      const std::vector<JobRequest>& requests);

  // Cumulative work-sharing telemetry across every window this engine ran.
  const sharing::SharingStats& sharing_stats() const { return sharing_stats_; }

  // Compile-only entry point: returns the optimized plan without executing
  // (used for inspection and by tests).
  Result<OptimizationOutcome> CompileJob(const JobRequest& request);

  // Periodic workload analysis + view selection; publishes the result to the
  // insights service. Returns the selection for inspection. `now` tags the
  // candidate provenance events (-1: inherit stream time).
  SelectionResult RunViewSelection(double now = -1.0);

  // Housekeeping at time `now`: expire views past TTL.
  void Maintenance(double now);

  // A shared dataset was bulk-updated (or GDPR-scrubbed): reclaim views.
  size_t OnDatasetUpdated(const std::string& dataset_name);

  // The SCOPE runtime version changed: all signatures move, so every view
  // and every published annotation is invalid and history must be re-mined.
  void OnRuntimeVersionChange(uint64_t new_version);

  // Cumulative signature-audit findings (collisions/instabilities) across
  // every plan compiled by this engine. Populated only in verification
  // builds; empty (and never failing) in Release.
  const verify::AuditReport& signature_audit() const {
    return auditor_.report();
  }

  DatasetCatalog* catalog() { return catalog_; }
  WorkloadRepository& repository() { return repository_; }
  const WorkloadRepository& repository() const { return repository_; }
  ViewStore& view_store() { return view_store_; }
  const ViewStore& view_store() const { return view_store_; }
  InsightsService& insights() { return insights_; }
  const InsightsService& insights() const { return insights_; }
  CardinalityFeedback& cardinality_feedback() { return feedback_; }
  ViewManager& view_manager() { return view_manager_; }
  obs::ProvenanceLedger& provenance() { return provenance_; }
  const obs::ProvenanceLedger& provenance() const { return provenance_; }
  obs::DecisionLedger& decisions() { return decisions_; }
  const obs::DecisionLedger& decisions() const { return decisions_; }
  // Per-engine reuse-hit split (exact strict-signature hits vs containment
  // hits), folded at FinalizeJob from what actually executed — fallbacks
  // never count. Per-engine (not the process-global metrics) so
  // side-by-side arms report their own splits.
  int64_t hits_exact() const { return hits_exact_; }
  int64_t hits_subsumed() const { return hits_subsumed_; }
  const ReuseEngineOptions& options() const { return options_; }

 private:
  // A compiled job between the prepare and finalize halves of RunJob. The
  // split exists for sharing windows: every job of a window is prepared
  // before any executes, so the rewrite sees all optimized plans at once.
  struct PreparedJob {
    JobRequest request;
    bool reuse_enabled = false;
    // Owns the as-compiled plan that compiled_sigs point into; must outlive
    // FinalizeJob, which walks those nodes when ingesting the workload.
    LogicalOpPtr bound_plan;
    std::vector<NodeSignature> compiled_sigs;
    OptimizationOutcome outcome;
    JobExecution exec;  // skeleton; completed by Execute/Finalize
    obs::QueryProfile profile;
  };

  Result<LogicalOpPtr> BindPlan(const JobRequest& request) const;
  Result<OptimizationOutcome> CompileBound(const JobRequest& request,
                                           const LogicalOpPtr& bound,
                                           bool reuse_enabled);
  bool ReuseEnabledFor(const JobRequest& request) const;

  // Bind + compile + register proposed materializations.
  Result<PreparedJob> PrepareJob(const JobRequest& request);
  // Execute (with the sealing hooks), falling back to the unrewritten plan
  // on failure. `directory` wires SharedScans to in-flight streams (null
  // outside a sharing window). When `deferred_invalidations` is non-null,
  // view invalidations triggered by fallbacks are queued there instead of
  // applied — during a window, producer threads still hold pointers into
  // the view store, so erasure must wait until they join.
  Status ExecutePrepared(PreparedJob* job,
                         const sharing::StreamDirectory* directory,
                         std::vector<std::pair<Hash128, double>>*
                             deferred_invalidations);
  // Reuse-hit provenance + repository ingest + insights profile.
  JobExecution FinalizeJob(PreparedJob job);

  DatasetCatalog* catalog_;
  ReuseEngineOptions options_;
  // Declared before the store/manager that hold pointers into it, so it
  // outlives them on destruction.
  obs::ProvenanceLedger provenance_;
  // Per-job reuse decision traces (compile-time choice points). Pure
  // observation: nothing reads it back into a decision.
  obs::DecisionLedger decisions_;
  int64_t hits_exact_ = 0;
  int64_t hits_subsumed_ = 0;
  ViewStore view_store_;
  InsightsService insights_;
  CardinalityFeedback feedback_;
  ViewManager view_manager_;
  WorkloadRepository repository_;
  std::unique_ptr<Optimizer> optimizer_;
  // Cross-checks every compiled plan's signatures via an independent second
  // canonicalization path (verification builds only).
  verify::SignatureAuditor auditor_;
  sharing::SharingStats sharing_stats_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_REUSE_ENGINE_H_
