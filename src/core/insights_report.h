#ifndef CLOUDVIEWS_CORE_INSIGHTS_REPORT_H_
#define CLOUDVIEWS_CORE_INSIGHTS_REPORT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/reuse_engine.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"

namespace cloudviews {

// Run-level context the engine itself does not know (how many days were
// simulated, how many jobs the driver submitted).
struct InsightsExportMeta {
  std::string cluster;
  int days = 0;
  int64_t jobs = 0;
  int64_t failed_jobs = 0;
  int num_virtual_clusters = 0;
  double now = 0.0;  // simulated end-of-run time; closes open rent windows
};

// Serializes everything the insights report needs into one JSON document:
// run metadata, a Table-1-shaped summary, per-VC savings attribution, the
// full provenance ledger, and the sampled time series (null when no
// collector was attached). Deterministic: a rerun of the same seed produces
// byte-identical output (values derive from the simulated clock and the
// cost model, never the wall clock).
std::string BuildInsightsJson(
    const ReuseEngine& engine, const obs::TimeSeriesCollector* timeseries,
    const InsightsExportMeta& meta,
    double rent_per_byte_second = obs::kDefaultStorageRentPerByteSecond);

struct InsightsReportOptions {
  int top_n = 10;  // rows in the top-views table
};

// Renders the paper-style text report (summary block, top-N views by net
// utility, negative-utility views, per-VC savings) from a BuildInsightsJson
// document. Pure function of its input: byte-identical for identical JSON.
Result<std::string> RenderInsightsReport(std::string_view insights_json,
                                         const InsightsReportOptions& options =
                                             {});

// Renders the per-job decision trees from a DecisionLedger::ExportJson
// document (production_simulation --explain=...): one block per traced job,
// events grouped under their decision stage, each carrying the candidate
// signatures, cost-model numbers, and the closed-registry reason — followed
// by the fleet-wide miss-attribution table. Pure function of its input:
// byte-identical for identical JSON.
Result<std::string> RenderExplainReport(std::string_view decisions_json,
                                        const InsightsReportOptions& options =
                                            {});

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_INSIGHTS_REPORT_H_
